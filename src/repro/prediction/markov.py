"""First-order Markov predictor with additive smoothing.

The natural model for the §5.3 source: estimate ``P(next = j | current = i)``
from transition counts.  With ``smoothing = 0`` (default) unseen transitions
get zero probability and the returned vector is the maximum-likelihood row;
a positive smoothing constant spreads mass over the whole catalog
(Laplace / add-k), which trades sharpness for robustness early in a stream.
"""

from __future__ import annotations

import numpy as np

from repro.prediction.base import AccessPredictor

__all__ = ["MarkovPredictor"]


class MarkovPredictor(AccessPredictor):
    def __init__(self, n_items: int, smoothing: float = 0.0) -> None:
        super().__init__(n_items)
        if smoothing < 0:
            raise ValueError("smoothing must be non-negative")
        self.smoothing = float(smoothing)
        self.counts = np.zeros((n_items, n_items), dtype=np.float64)
        self.current: int | None = None

    def update(self, item: int) -> None:
        item = self._check_item(item)
        if self.current is not None:
            self.counts[self.current, item] += 1.0
        self.current = item

    def predict(self) -> np.ndarray:
        if self.current is None:
            return np.zeros(self.n_items)
        return self.conditional_row(self.current)

    def conditional_row(self, item: int) -> np.ndarray:
        """Estimated next-access row given the client just accessed ``item``."""
        row = self.counts[self._check_item(item)]
        total = row.sum()
        if self.smoothing > 0.0:
            smoothed = row + self.smoothing
            return smoothed / smoothed.sum()
        if total == 0.0:
            return np.zeros(self.n_items)
        return row / total

    def reset(self) -> None:
        self.counts[:] = 0.0
        self.current = None

    def transition_estimate(self) -> np.ndarray:
        """Full estimated transition matrix (rows of unvisited states are 0)."""
        totals = self.counts.sum(axis=1, keepdims=True)
        with np.errstate(invalid="ignore", divide="ignore"):
            est = np.where(totals > 0, self.counts / np.maximum(totals, 1e-300), 0.0)
        return est
