"""Ensemble predictor: blend several access models.

§6 notes that any of the literature's access models could supply the
``P_i`` the performance model presupposes.  In practice one hedges: a
sequence model (Markov/PPM) is sharp once warm but useless cold, while the
frequency model is weak but available immediately.  The ensemble mixes
member predictions with fixed weights, or — with ``adaptive=True`` —
weights each member by its recent prequential performance (exponentially
discounted assigned probability), a standard online mixture-of-experts
scheme.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.prediction.base import AccessPredictor

__all__ = ["EnsemblePredictor"]


class EnsemblePredictor(AccessPredictor):
    def __init__(
        self,
        members: Sequence[AccessPredictor],
        weights: Sequence[float] | None = None,
        *,
        adaptive: bool = False,
        discount: float = 0.95,
    ) -> None:
        if not members:
            raise ValueError("ensemble needs at least one member")
        n_items = members[0].n_items
        if any(m.n_items != n_items for m in members):
            raise ValueError("all members must share one catalog size")
        super().__init__(n_items)
        self.members = list(members)
        if weights is None:
            weights = [1.0] * len(self.members)
        if len(weights) != len(self.members):
            raise ValueError("one weight per member required")
        w = np.asarray(weights, dtype=np.float64)
        if np.any(w < 0) or w.sum() <= 0:
            raise ValueError("weights must be non-negative and not all zero")
        self.weights = w / w.sum()
        self.adaptive = bool(adaptive)
        if not 0.0 < discount <= 1.0:
            raise ValueError("discount must be in (0, 1]")
        self.discount = float(discount)
        # Discounted credit per member; starts uniform.
        self._credit = np.ones(len(self.members), dtype=np.float64)

    def _mix(self) -> np.ndarray:
        if not self.adaptive:
            return self.weights
        total = self._credit.sum()
        return self._credit / total if total > 0 else self.weights

    def update(self, item: int) -> None:
        item = self._check_item(item)
        if self.adaptive:
            # Score members on this access before they see it (prequential).
            for k, member in enumerate(self.members):
                assigned = float(member.predict()[item])
                self._credit[k] = self.discount * self._credit[k] + assigned
        for member in self.members:
            member.update(item)

    def predict(self) -> np.ndarray:
        mix = self._mix()
        out = np.zeros(self.n_items)
        for weight, member in zip(mix, self.members):
            out += weight * member.predict()
        return out

    def reset(self) -> None:
        """Reset every member and the adaptive credit (drift-reset support)."""
        for member in self.members:
            member.reset()
        self._credit = np.ones(len(self.members), dtype=np.float64)
