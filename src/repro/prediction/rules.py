"""Rule-mined next-access model — PPE-style session n-gram rules.

PPE (arXiv 1109.6206) mines *prediction-by-partial-match style rules* from
user session logs: an antecedent (a recent access subsequence) implies a
consequent page with some confidence, and only rules passing support and
confidence thresholds are allowed to fire.  This module is the online
analogue:

* n-gram tables up to ``max_order`` count, per context tuple, which item
  followed; tables are periodically *halved and pruned* (every
  ``halflife`` updates) so stale rules fade instead of voting forever;
* prediction fires the **longest matching context** whose total support
  clears ``min_support``; within it, only consequents whose conditional
  confidence clears ``min_confidence`` receive their confidence as
  probability mass — a deliberately sparse, high-precision signal;
* the residual mass falls back to a base predictor (decayed popularity by
  default), so the output remains a usable full distribution even when no
  rule fires.

:meth:`RulePredictor.reset` clears tables, history and the base model, so
the predictor composes with
:class:`~repro.prediction.adaptive.DriftAdaptivePredictor` and the
``model_source="online"`` planner path via
:meth:`RulePredictor.conditional_row`.
"""

from __future__ import annotations

import numpy as np

from repro.prediction.adaptive import EWMAFrequencyPredictor
from repro.prediction.base import AccessPredictor

__all__ = ["RulePredictor"]


class RulePredictor(AccessPredictor):
    """Thresholded n-gram rules with a frequency fallback.

    Parameters
    ----------
    max_order:
        Longest antecedent (context) length mined.
    min_support:
        Minimum total (decayed) count a context needs before its rules may
        fire.
    min_confidence:
        Minimum conditional probability a consequent needs to receive mass.
    halflife:
        Updates between halving sweeps; counts below 0.5 are pruned, empty
        contexts dropped.  0 disables forgetting.
    base:
        Fallback model receiving the mass no rule claims; defaults to
        :class:`~repro.prediction.adaptive.EWMAFrequencyPredictor`.
    """

    def __init__(
        self,
        n_items: int,
        *,
        max_order: int = 3,
        min_support: float = 3.0,
        min_confidence: float = 0.35,
        halflife: int = 200,
        base: AccessPredictor | None = None,
    ) -> None:
        super().__init__(n_items)
        if max_order < 1:
            raise ValueError("max_order must be positive")
        if min_support < 0:
            raise ValueError("min_support must be non-negative")
        if not 0.0 < min_confidence <= 1.0:
            raise ValueError("min_confidence must be in (0, 1]")
        if halflife < 0:
            raise ValueError("halflife must be non-negative")
        if base is not None and base.n_items != n_items:
            raise ValueError("base predictor must share the catalog size")
        self.max_order = int(max_order)
        self.min_support = float(min_support)
        self.min_confidence = float(min_confidence)
        self.halflife = int(halflife)
        self.base = base if base is not None else EWMAFrequencyPredictor(n_items, decay=0.98)
        # tables[k-1] maps a length-k context tuple to {next_item: count}.
        self.tables: list[dict[tuple[int, ...], dict[int, float]]] = []
        self.history: list[int] = []
        self._since_halve = 0
        self.reset()

    def reset(self) -> None:
        """Forget rules, history and the base model (drift-reset support)."""
        self.tables = [dict() for _ in range(self.max_order)]
        self.history = []
        self._since_halve = 0
        self.base.reset()

    def update(self, item: int) -> None:
        item = self._check_item(item)
        h = self.history
        for k in range(1, self.max_order + 1):
            if len(h) < k:
                break
            ctx = tuple(h[-k:])
            tbl = self.tables[k - 1]
            ent = tbl.get(ctx)
            if ent is None:
                ent = tbl[ctx] = {}
            ent[item] = ent.get(item, 0.0) + 1.0
        h.append(item)
        if len(h) > self.max_order:
            del h[: -self.max_order]
        self.base.update(item)
        self._since_halve += 1
        if self.halflife and self._since_halve >= self.halflife:
            self._since_halve = 0
            self._halve()

    def _halve(self) -> None:
        for tbl in self.tables:
            dead = []
            for ctx, ent in tbl.items():
                for it in list(ent):
                    ent[it] *= 0.5
                    if ent[it] < 0.5:
                        del ent[it]
                if not ent:
                    dead.append(ctx)
            for ctx in dead:
                del tbl[ctx]

    def _fire(self, context: list[int]) -> list[tuple[int, float]] | None:
        """Longest-match-first rule firing: ``[(item, confidence)]`` or None."""
        for k in range(min(self.max_order, len(context)), 0, -1):
            ctx = tuple(context[-k:])
            ent = self.tables[k - 1].get(ctx)
            if not ent:
                continue
            tot = sum(ent.values())
            if tot < self.min_support:
                continue
            fired = [
                (it, c / tot) for it, c in ent.items() if c / tot >= self.min_confidence
            ]
            if fired:
                return fired
        return None

    def _mix(self, fired: list[tuple[int, float]] | None, base_row: np.ndarray) -> np.ndarray:
        if not fired:
            return base_row.copy()
        p = np.zeros(self.n_items, dtype=np.float64)
        mass = 0.0
        for it, conf in fired:
            p[it] += conf
            mass += conf
        mass = min(mass, 1.0)
        total = p.sum()
        if total > mass:
            p *= mass / total
        p += (1.0 - mass) * base_row
        return p

    def predict(self) -> np.ndarray:
        fired = self._fire(self.history)
        return self._mix(fired, np.asarray(self.base.predict(), dtype=np.float64))

    def conditional_row(self, item: int) -> np.ndarray:
        item = self._check_item(item)
        # If the real history already ends on `item` (the common planner
        # call pattern) use the full context so higher-order rules fire;
        # otherwise condition on `item` alone.
        ctx = self.history if (self.history and self.history[-1] == item) else [item]
        fired = self._fire(ctx)
        return self._mix(fired, np.asarray(self.base.conditional_row(item), dtype=np.float64))
