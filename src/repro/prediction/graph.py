"""Dependency-graph predictor — Padmanabhan & Mogul's server-side scheme.

§1.1: "The server builds a dependency graph where each link is labelled
with the probability of the follow-up access being made."  An arc ``i → j``
counts how often ``j`` was requested within a lookahead *window* of ``w``
accesses after ``i``; the prediction from the current item is the arc
weight normalised by the tail count of ``i``.

Because several items can follow within one window, the raw ratios can sum
above one; they are clipped to a distribution by scaling when necessary
(the planner needs ``sum P <= 1``).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.prediction.base import AccessPredictor

__all__ = ["DependencyGraphPredictor"]


class DependencyGraphPredictor(AccessPredictor):
    def __init__(self, n_items: int, window: int = 2) -> None:
        super().__init__(n_items)
        if window < 1:
            raise ValueError("window must be positive")
        self.window = int(window)
        self.arc_counts = np.zeros((n_items, n_items), dtype=np.float64)
        self.visit_counts = np.zeros(n_items, dtype=np.float64)
        self.recent: deque[int] = deque(maxlen=window)
        self.current: int | None = None

    def update(self, item: int) -> None:
        item = self._check_item(item)
        for predecessor in self.recent:
            if predecessor != item:
                self.arc_counts[predecessor, item] += 1.0
        self.recent.append(item)
        self.visit_counts[item] += 1.0
        self.current = item

    def predict(self) -> np.ndarray:
        if self.current is None or self.visit_counts[self.current] == 0.0:
            return np.zeros(self.n_items)
        p = self.arc_counts[self.current] / self.visit_counts[self.current]
        total = p.sum()
        if total > 1.0:
            p = p / total
        return p

    def reset(self) -> None:
        """Forget all arcs and recency state (drift-reset support)."""
        self.arc_counts = np.zeros((self.n_items, self.n_items), dtype=np.float64)
        self.visit_counts = np.zeros(self.n_items, dtype=np.float64)
        self.recent = deque(maxlen=self.window)
        self.current = None
