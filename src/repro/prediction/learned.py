"""Learned next-access model — GrASP-style embeddings over the access graph.

GrASP (arXiv 2510.11011) learns *general-purpose* item representations from
access co-occurrence and uses cluster structure in that embedding space to
generalise predictions to items with little direct history.  This module is
the online, dependency-free analogue of that recipe:

1. maintain a per-row exponentially-decayed first-order transition matrix
   (the "access graph", forgotten lazily so updates stay O(row));
2. periodically factor the warm rows with a truncated SVD — each active
   item gets an embedding ``u_i * s`` capturing *which successors it
   shares* with other items;
3. cluster the embeddings with a seeded numpy k-means, and pool the raw
   transition rows inside each cluster into a *cluster conditional row*;
4. predict with a shrinkage blend: an item's raw row is trusted in
   proportion to its evidence, the remainder split between its cluster's
   pooled row and the global decayed popularity — so cold or thinly-seen
   items inherit the behaviour of the cluster they embed into;
5. sharpen the blend (``p ** concentration``, renormalised) — under the
   planner's limited cache budget a confidently-concentrated estimate of
   the head beats a well-calibrated but flat one.

Everything is deterministic given ``seed`` (k-means init derives from
:func:`repro.util.rng.derive_seed`), and :meth:`GraspPredictor.reset`
forgets the full state, so the model composes with
:class:`~repro.prediction.adaptive.DriftAdaptivePredictor` and the
``model_source="online"`` path of the distsys engines.
"""

from __future__ import annotations

import numpy as np

from repro.prediction.base import AccessPredictor
from repro.util.rng import derive_seed

__all__ = ["GraspPredictor"]


class GraspPredictor(AccessPredictor):
    """Embedding-clustered transition model with shrinkage and sharpening.

    Parameters
    ----------
    decay:
        Per-step forgetting factor for transition rows and the global
        popularity marginal (memory ``~1/(1-decay)`` steps).
    rank:
        Truncated-SVD rank of the item embeddings.
    n_clusters:
        k-means cluster count over the embeddings (capped by the number of
        warm rows).
    refit_every:
        Updates between embedding/cluster refits.
    shrink:
        Pseudo-count governing trust in an item's raw transition row.
    cluster_shrink:
        Pseudo-count governing trust in the cluster row vs the global
        popularity fallback.
    concentration:
        Exponent sharpening the final blend (1.0 = calibrated).
    seed:
        Deterministic k-means initialisation seed.
    """

    def __init__(
        self,
        n_items: int,
        *,
        decay: float = 0.97,
        rank: int = 8,
        n_clusters: int = 6,
        refit_every: int = 32,
        shrink: float = 100.0,
        cluster_shrink: float = 100.0,
        concentration: float = 3.0,
        seed: int = 0x6A5,
    ) -> None:
        super().__init__(n_items)
        if not 0.0 < decay <= 1.0:
            raise ValueError("decay must be in (0, 1]")
        if rank < 1:
            raise ValueError("rank must be positive")
        if n_clusters < 1:
            raise ValueError("n_clusters must be positive")
        if refit_every < 1:
            raise ValueError("refit_every must be positive")
        if shrink < 0 or cluster_shrink < 0:
            raise ValueError("shrinkage pseudo-counts must be non-negative")
        if concentration <= 0:
            raise ValueError("concentration must be positive")
        self.decay = float(decay)
        self.rank = int(rank)
        self.n_clusters = int(n_clusters)
        self.refit_every = int(refit_every)
        self.shrink = float(shrink)
        self.cluster_shrink = float(cluster_shrink)
        self.concentration = float(concentration)
        self.seed = int(seed)
        self.reset()

    def reset(self) -> None:
        """Forget transitions, embeddings and clusters (drift-reset support)."""
        n = self.n_items
        self.trans = np.zeros((n, n), dtype=np.float64)
        self.row_total = np.zeros(n, dtype=np.float64)
        self.marg = np.zeros(n, dtype=np.float64)
        self.total = 0.0
        self.prev: int | None = None
        self.step = 0
        # Rows decay lazily: _row_stamp[i] is the step row i was last
        # brought current, so touching a row costs O(n) not O(n^2).
        self._row_stamp = np.zeros(n, dtype=np.int64)
        self.clusters: np.ndarray | None = None  # (n,) ids, -1 = cold
        self.cluster_rows: np.ndarray | None = None  # (k, n) pooled rows
        self.cluster_mass: np.ndarray | None = None  # (k,) pooled evidence
        self._since_fit = 0

    def _sync_row(self, i: int) -> None:
        dt = self.step - self._row_stamp[i]
        if dt > 0:
            f = self.decay**dt
            self.trans[i] *= f
            self.row_total[i] *= f
            self._row_stamp[i] = self.step

    def update(self, item: int) -> None:
        item = self._check_item(item)
        self.step += 1
        self.marg *= self.decay
        self.total = self.total * self.decay + 1.0
        self.marg[item] += 1.0
        if self.prev is not None:
            self._sync_row(self.prev)
            self.trans[self.prev, item] += 1.0
            self.row_total[self.prev] += 1.0
        self.prev = item
        self._since_fit += 1
        if self._since_fit >= self.refit_every:
            self._refit()

    def _refit(self) -> None:
        self._since_fit = 0
        active = np.nonzero(self.row_total > 0)[0]
        if active.size < 2:
            return
        for i in active:
            self._sync_row(i)
        rows = self.trans[active] / self.row_total[active, None]
        # Weight rows by sqrt evidence so thin rows don't distort the
        # factorisation as much as well-observed ones.
        w = np.sqrt(self.row_total[active])
        try:
            u, s, _ = np.linalg.svd(rows * w[:, None], full_matrices=False)
        except np.linalg.LinAlgError:
            return
        r = min(self.rank, s.size)
        emb = u[:, :r] * s[:r]
        k = min(self.n_clusters, active.size)
        rng = np.random.default_rng(derive_seed(self.seed, n=self.n_items))
        centers = emb[rng.choice(active.size, size=k, replace=False)]
        assign = np.zeros(active.size, dtype=np.intp)
        for it in range(8):
            d = ((emb[:, None, :] - centers[None]) ** 2).sum(axis=2)
            new_assign = d.argmin(axis=1)
            if it > 0 and np.array_equal(new_assign, assign):
                break
            assign = new_assign
            for c in range(k):
                m = assign == c
                if m.any():
                    centers[c] = emb[m].mean(axis=0)
        clusters = np.full(self.n_items, -1, dtype=np.intp)
        clusters[active] = assign
        gl = self.marg / self.total if self.total > 0 else np.zeros(self.n_items)
        crow = np.zeros((k, self.n_items), dtype=np.float64)
        cmass = np.zeros(k, dtype=np.float64)
        for c in range(k):
            m = assign == c
            if m.any():
                wsum = self.row_total[active[m]].sum()
                cmass[c] = wsum
                crow[c] = self.trans[active[m]].sum(axis=0) / wsum if wsum > 0 else gl
            else:
                crow[c] = gl
        self.clusters = clusters
        self.cluster_rows = crow
        self.cluster_mass = cmass

    def conditional_row(self, item: int) -> np.ndarray:
        item = self._check_item(item)
        n = self.n_items
        if self.total <= 0:
            return np.zeros(n)
        gl = self.marg / self.total
        self._sync_row(item)
        ni = self.row_total[item]
        raw = self.trans[item] / ni if ni > 0 else np.zeros(n)
        if self.clusters is not None and self.clusters[item] >= 0:
            c = int(self.clusters[item])
            cl = self.cluster_rows[c]
            wsum = float(self.cluster_mass[c])
        else:
            cl, wsum = gl, 0.0
        lam = ni / (ni + self.shrink)
        mu = wsum / (wsum + self.cluster_shrink)
        p = lam * raw + (1.0 - lam) * (mu * cl + (1.0 - mu) * gl)
        s = p.sum()
        if s <= 0:
            return np.zeros(n)
        # Sharpen: the planner spends a finite cache budget, so a
        # concentrated estimate of the head beats a calibrated flat one.
        # No uniform floor — exact ties across the tail are pathological
        # for the branch-and-bound SKP solver.
        q = p**self.concentration
        qs = q.sum()
        return q / qs if qs > 0 else p / s

    def predict(self) -> np.ndarray:
        if self.prev is None:
            return np.zeros(self.n_items)
        return self.conditional_row(self.prev)
