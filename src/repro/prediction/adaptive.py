"""Online-adaptive access models for non-stationary request streams.

The static predictors in this package converge on the long-run empirical
distribution — exactly the wrong thing when demand drifts, because every
stale observation keeps a vote forever.  This module supplies the
forgetting machinery the drift experiments plan with:

* :class:`EWMAFrequencyPredictor` — exponentially-decayed popularity counts
  (each observation multiplies the old counts by ``decay``), so the
  effective memory is ``1 / (1 - decay)`` recent accesses;
* :class:`SlidingWindowFrequencyPredictor` — popularity over exactly the
  last ``window`` accesses (hard forget);
* :class:`EWMAMarkovPredictor` — first-order transition counts with
  *per-row* exponential decay: observing ``i → j`` first decays row ``i``,
  then credits the transition.  Rows are forgotten when revisited, which
  keeps the update O(out-degree) instead of O(n²) per request;
* :class:`DriftAdaptivePredictor` — a wrapper adding a Page–Hinkley drift
  detector on the inner model's prequential loss (1 − assigned
  probability).  When the mean loss rises persistently above its running
  minimum the wrapped model is *reset* and relearns the new regime — the
  PPE/GrASP-style "derive the model from the observed stream, notice when
  it stops fitting" loop.

All of these honour the planner's provider interface through
:meth:`~repro.prediction.base.AccessPredictor.conditional_row`, so any of
them can replace the oracle row in the distsys engines
(``model_source="online"`` on fleet/topology configs).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.prediction.base import AccessPredictor

__all__ = [
    "EWMAFrequencyPredictor",
    "SlidingWindowFrequencyPredictor",
    "EWMAMarkovPredictor",
    "DriftAdaptivePredictor",
]


class EWMAFrequencyPredictor(AccessPredictor):
    """Popularity estimate with exponential forgetting.

    ``decay`` close to 1 approaches the static
    :class:`~repro.prediction.frequency.FrequencyPredictor`; smaller values
    track shifts faster at the cost of noisier estimates.
    """

    def __init__(self, n_items: int, decay: float = 0.98) -> None:
        super().__init__(n_items)
        if not 0.0 < decay <= 1.0:
            raise ValueError("decay must be in (0, 1]")
        self.decay = float(decay)
        self.counts = np.zeros(n_items, dtype=np.float64)

    def update(self, item: int) -> None:
        item = self._check_item(item)
        if self.decay < 1.0:
            self.counts *= self.decay
        self.counts[item] += 1.0

    def predict(self) -> np.ndarray:
        total = self.counts.sum()
        if total == 0.0:
            return np.zeros(self.n_items)
        return self.counts / total

    def reset(self) -> None:
        self.counts[:] = 0.0


class SlidingWindowFrequencyPredictor(AccessPredictor):
    """Popularity over exactly the last ``window`` accesses."""

    def __init__(self, n_items: int, window: int = 200) -> None:
        super().__init__(n_items)
        if window < 1:
            raise ValueError("window must be positive")
        self.window = int(window)
        self.counts = np.zeros(n_items, dtype=np.float64)
        self._recent: deque[int] = deque()

    def update(self, item: int) -> None:
        item = self._check_item(item)
        self._recent.append(item)
        self.counts[item] += 1.0
        if len(self._recent) > self.window:
            self.counts[self._recent.popleft()] -= 1.0

    def predict(self) -> np.ndarray:
        total = self.counts.sum()
        if total == 0.0:
            return np.zeros(self.n_items)
        return self.counts / total

    def reset(self) -> None:
        self.counts[:] = 0.0
        self._recent.clear()


class EWMAMarkovPredictor(AccessPredictor):
    """First-order Markov estimate with per-row exponential forgetting.

    Observing a transition ``i → j`` first multiplies row ``i`` by
    ``decay``, then adds one count to ``(i, j)`` — so a row's memory decays
    per *visit to i*, not per global step.  Rows of states the stream no
    longer reaches keep their last estimate (they stop mattering exactly
    when they stop being planned from), which is what keeps the update
    O(row) instead of O(n²).
    """

    def __init__(self, n_items: int, decay: float = 0.9) -> None:
        super().__init__(n_items)
        if not 0.0 < decay <= 1.0:
            raise ValueError("decay must be in (0, 1]")
        self.decay = float(decay)
        self.counts = np.zeros((n_items, n_items), dtype=np.float64)
        self.current: int | None = None

    def update(self, item: int) -> None:
        item = self._check_item(item)
        if self.current is not None:
            row = self.counts[self.current]
            if self.decay < 1.0:
                row *= self.decay
            row[item] += 1.0
        self.current = item

    def conditional_row(self, item: int) -> np.ndarray:
        row = self.counts[self._check_item(item)]
        total = row.sum()
        if total == 0.0:
            return np.zeros(self.n_items)
        return row / total

    def predict(self) -> np.ndarray:
        if self.current is None:
            return np.zeros(self.n_items)
        return self.conditional_row(self.current)

    def reset(self) -> None:
        self.counts[:] = 0.0
        self.current = None


class DriftAdaptivePredictor(AccessPredictor):
    """Page–Hinkley drift detection wrapped around any access predictor.

    Before each observation is fed to the inner model, its prequential loss
    (1 − probability the inner model assigned to the item that actually
    arrived) updates a Page–Hinkley statistic: the cumulative deviation of
    the loss from its running mean, minus ``delta`` slack per step.  When
    the statistic exceeds its running minimum by ``threshold``, a drift is
    declared, the inner model is :meth:`reset`, and the test restarts —
    after a ``warmup`` grace period during which the fresh model's
    (necessarily poor) early losses are not scored.

    ``drift_events`` counts declared drifts; the drift experiments surface
    it as a per-cell metric.
    """

    def __init__(
        self,
        inner: AccessPredictor,
        *,
        threshold: float = 8.0,
        delta: float = 0.005,
        warmup: int = 30,
    ) -> None:
        super().__init__(inner.n_items)
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        if delta < 0:
            raise ValueError("delta must be non-negative")
        if warmup < 0:
            raise ValueError("warmup must be non-negative")
        # Drift adaptation is reset-based: an inner model that never
        # overrode AccessPredictor.reset would raise NotImplementedError at
        # the first alarm, deep inside a simulation — fail at build time.
        if type(inner).reset is AccessPredictor.reset:
            raise ValueError(
                f"{type(inner).__name__} does not implement reset(); "
                "DriftAdaptivePredictor needs a resettable inner model"
            )
        self.inner = inner
        self.threshold = float(threshold)
        self.delta = float(delta)
        self.warmup = int(warmup)
        self.drift_events = 0
        self._observed = 0
        self._scored = 0
        self._loss_sum = 0.0
        self._ph = 0.0
        self._ph_min = 0.0

    def update(self, item: int) -> None:
        item = self._check_item(item)
        self._observed += 1
        if self._observed > self.warmup:
            loss = 1.0 - float(self.inner.predict()[item])
            self._scored += 1
            self._loss_sum += loss
            mean = self._loss_sum / self._scored
            self._ph += loss - mean - self.delta
            self._ph_min = min(self._ph_min, self._ph)
            if self._ph - self._ph_min > self.threshold:
                self.drift_events += 1
                self.inner.reset()
                self._restart()
        self.inner.update(item)

    def _restart(self) -> None:
        self._observed = 0
        self._scored = 0
        self._loss_sum = 0.0
        self._ph = 0.0
        self._ph_min = 0.0

    def predict(self) -> np.ndarray:
        return self.inner.predict()

    def conditional_row(self, item: int) -> np.ndarray:
        return self.inner.conditional_row(item)

    def reset(self) -> None:
        self.inner.reset()
        self.drift_events = 0
        self._restart()
