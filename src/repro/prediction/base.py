"""Access-predictor interface.

The paper's model *presupposes* next-access probabilities ``P_i`` (§2) and
points at the access-modelling literature (§1.1, §6) for where they come
from.  This package supplies those models so the planner can run on real
request streams: every predictor consumes an access stream via
:meth:`AccessPredictor.update` and emits a probability vector over the
catalog via :meth:`AccessPredictor.predict`.

Predictions may sum to *less* than one — unassigned mass means "something I
cannot name", which the improvement formulas of :mod:`repro.core` handle as
residual mass (it still pays the stretch penalty).
"""

from __future__ import annotations

import numpy as np

__all__ = ["AccessPredictor"]


class AccessPredictor:
    """Online next-access model over a fixed catalog of ``n`` items."""

    def __init__(self, n_items: int) -> None:
        if n_items < 1:
            raise ValueError("n_items must be positive")
        self.n_items = int(n_items)

    def update(self, item: int) -> None:
        """Observe one access."""
        raise NotImplementedError

    def predict(self) -> np.ndarray:
        """Probability vector for the next access (sums to at most 1)."""
        raise NotImplementedError

    def update_many(self, items) -> None:
        for item in items:
            self.update(int(item))

    def conditional_row(self, item: int) -> np.ndarray:
        """Next-access vector given the client just accessed ``item``.

        The planner's probability-provider interface asks for the row of a
        specific item (the one whose viewing period is being planned), which
        may differ from the last item this predictor observed — e.g. a
        demand-victim solve runs *before* the served item is recorded.
        Context-free predictors ignore the argument; contextual ones
        (Markov-family) override this to return the estimated row of
        ``item`` itself.
        """
        return self.predict()

    def reset(self) -> None:
        """Forget all learned state (drift adaptation hook)."""
        raise NotImplementedError

    def _check_item(self, item: int) -> int:
        item = int(item)
        if not 0 <= item < self.n_items:
            raise ValueError(f"item {item} outside catalog of {self.n_items}")
        return item
