"""Access models supplying the ``P_i`` the paper presupposes (§1.1, §6).

* :mod:`repro.prediction.markov` — first-order Markov (the §5.3 oracle's
  learnable counterpart);
* :mod:`repro.prediction.ppm` — order-k PPM blender (Vitter & Krishnan);
* :mod:`repro.prediction.graph` — dependency graph (Padmanabhan & Mogul);
* :mod:`repro.prediction.frequency` — zeroth-order popularity baseline;
* :mod:`repro.prediction.adaptive` — forgetting variants (EWMA / sliding
  window) and Page–Hinkley drift-reset wrapping for non-stationary streams;
* :mod:`repro.prediction.learned` — GrASP-style embedding-clustered
  transition model (truncated SVD + seeded k-means);
* :mod:`repro.prediction.rules` — PPE-style thresholded n-gram rules with
  a frequency fallback;
* :mod:`repro.prediction.evaluation` — prequential scoring harness.
"""

from repro.prediction.base import AccessPredictor
from repro.prediction.markov import MarkovPredictor
from repro.prediction.ppm import PPMPredictor
from repro.prediction.graph import DependencyGraphPredictor
from repro.prediction.frequency import FrequencyPredictor
from repro.prediction.ensemble import EnsemblePredictor
from repro.prediction.adaptive import (
    DriftAdaptivePredictor,
    EWMAFrequencyPredictor,
    EWMAMarkovPredictor,
    SlidingWindowFrequencyPredictor,
)
from repro.prediction.learned import GraspPredictor
from repro.prediction.rules import RulePredictor
from repro.prediction.evaluation import PredictorScore, evaluate_predictor

__all__ = [
    "AccessPredictor",
    "MarkovPredictor",
    "PPMPredictor",
    "DependencyGraphPredictor",
    "FrequencyPredictor",
    "EnsemblePredictor",
    "EWMAFrequencyPredictor",
    "EWMAMarkovPredictor",
    "SlidingWindowFrequencyPredictor",
    "DriftAdaptivePredictor",
    "GraspPredictor",
    "RulePredictor",
    "PredictorScore",
    "evaluate_predictor",
]
