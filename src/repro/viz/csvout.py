"""CSV series output for the figure harness (results/*.csv)."""

from __future__ import annotations

import io
from collections.abc import Mapping, Sequence
from pathlib import Path

import numpy as np

__all__ = ["write_series", "write_rows"]


def write_series(
    path: str | Path,
    x_name: str,
    x: np.ndarray,
    series: Mapping[str, np.ndarray],
) -> None:
    """Write ``x`` plus named y-columns as CSV."""
    x = np.asarray(x)
    for name, y in series.items():
        if np.asarray(y).shape != x.shape:
            raise ValueError(f"series {name!r} length does not match x")
    buf = io.StringIO()
    buf.write(",".join([x_name] + list(series)) + "\n")
    for k in range(x.shape[0]):
        row = [f"{float(x[k]):.10g}"] + [
            f"{float(np.asarray(y)[k]):.10g}" for y in series.values()
        ]
        buf.write(",".join(row) + "\n")
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(buf.getvalue())


def write_rows(path: str | Path, header: Sequence[str], rows: Sequence[Sequence]) -> None:
    """Write arbitrary rows as CSV."""
    buf = io.StringIO()
    buf.write(",".join(header) + "\n")
    for row in rows:
        buf.write(",".join(str(v) for v in row) + "\n")
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(buf.getvalue())
