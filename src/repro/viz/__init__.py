"""Text rendering and CSV export for the reproduced figures."""

from repro.viz.ascii_plot import line_plot, scatter
from repro.viz.csvout import write_rows, write_series

__all__ = ["line_plot", "scatter", "write_rows", "write_series"]
