"""Terminal plots: scatter and multi-series line charts in plain text.

Matplotlib is unavailable offline, so the figure harness renders the
paper's plots as ASCII — good enough to eyeball the shapes the paper
reports (the triangular KP region of Figure 4, the crossing curves of
Figure 5, the decaying curves of Figure 7) directly in the benchmark
output.  The numeric series are also written as CSV via
:mod:`repro.viz.csvout` for external plotting.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

__all__ = ["scatter", "line_plot"]

_SERIES_MARKS = "ox+*#%@&"


def _canvas(width: int, height: int) -> list[list[str]]:
    return [[" "] * width for _ in range(height)]


def _render(
    canvas: list[list[str]],
    x_lo: float,
    x_hi: float,
    y_lo: float,
    y_hi: float,
    title: str,
    x_label: str,
    y_label: str,
    legend: str = "",
) -> str:
    height = len(canvas)
    lines = []
    if title:
        lines.append(title)
    if legend:
        lines.append(legend)
    lines.append(f"{y_hi:10.2f} ┌" + "".join("─" for _ in canvas[0]) + "┐")
    for row in canvas:
        lines.append(" " * 11 + "│" + "".join(row) + "│")
    lines.append(f"{y_lo:10.2f} └" + "".join("─" for _ in canvas[0]) + "┘")
    width = len(canvas[0])
    footer = f"{x_lo:<.6g}"
    right = f"{x_hi:.6g}"
    pad = max(1, width - len(footer) - len(right))
    lines.append(" " * 12 + footer + " " * pad + right + f"   ({x_label} →, {y_label} ↑)")
    return "\n".join(lines)


def _bounds(values: np.ndarray, lo: float | None, hi: float | None) -> tuple[float, float]:
    finite = values[np.isfinite(values)]
    v_lo = float(finite.min()) if lo is None and finite.size else (lo or 0.0)
    v_hi = float(finite.max()) if hi is None and finite.size else (hi or 1.0)
    if v_hi <= v_lo:
        v_hi = v_lo + 1.0
    return v_lo, v_hi


def scatter(
    x: np.ndarray,
    y: np.ndarray,
    *,
    width: int = 70,
    height: int = 22,
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
    x_max: float | None = None,
    y_max: float | None = None,
    mark: str = "·",
) -> str:
    """Scatter plot (the Figure 4 style)."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    x_lo, x_hi = _bounds(x, 0.0, x_max)
    y_lo, y_hi = _bounds(y, 0.0, y_max)
    canvas = _canvas(width, height)
    for xi, yi in zip(x, y):
        if not (math.isfinite(xi) and math.isfinite(yi)):
            continue
        if xi > x_hi or yi > y_hi or xi < x_lo or yi < y_lo:
            continue
        col = min(width - 1, int((xi - x_lo) / (x_hi - x_lo) * (width - 1)))
        row = min(height - 1, int((yi - y_lo) / (y_hi - y_lo) * (height - 1)))
        canvas[height - 1 - row][col] = mark
    return _render(canvas, x_lo, x_hi, y_lo, y_hi, title, x_label, y_label)


def line_plot(
    x: np.ndarray,
    series: dict[str, np.ndarray] | Sequence[tuple[str, np.ndarray]],
    *,
    width: int = 70,
    height: int = 22,
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
    y_max: float | None = None,
) -> str:
    """Multi-series chart (the Figure 5 / Figure 7 style).

    Each series gets a marker character; the legend maps markers to names.
    """
    x = np.asarray(x, dtype=np.float64)
    items = list(series.items()) if isinstance(series, dict) else list(series)
    all_y = np.concatenate([np.asarray(y, dtype=np.float64) for _, y in items])
    x_lo, x_hi = _bounds(x, None, None)
    y_lo, y_hi = _bounds(all_y, 0.0, y_max)
    canvas = _canvas(width, height)
    legend_parts = []
    for idx, (name, y) in enumerate(items):
        mark = _SERIES_MARKS[idx % len(_SERIES_MARKS)]
        legend_parts.append(f"{mark}={name}")
        y = np.asarray(y, dtype=np.float64)
        for xi, yi in zip(x, y):
            if not (math.isfinite(xi) and math.isfinite(yi)):
                continue
            if yi > y_hi or yi < y_lo:
                continue
            col = min(width - 1, int((xi - x_lo) / (x_hi - x_lo) * (width - 1)))
            row = min(height - 1, int((yi - y_lo) / (y_hi - y_lo) * (height - 1)))
            canvas[height - 1 - row][col] = mark
    return _render(
        canvas, x_lo, x_hi, y_lo, y_hi, title, x_label, y_label, legend="  ".join(legend_parts)
    )
