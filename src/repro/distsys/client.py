"""The prefetching client: cache + planner + one network channel.

This is the event-driven generalisation of the lean §5.3 simulator
(:mod:`repro.simulation.prefetch_cache`): retrieval times derive from item
sizes over a latency/bandwidth link, next-access estimates come from any
provider (the true Markov row, or an online predictor from
:mod:`repro.prediction`), and transfer completions are delivered through an
:class:`repro.distsys.events.EventQueue`.  On equal-size catalogs with a
unit link and the oracle provider it reproduces the lean simulator's access
times *exactly* (see ``tests/integration/test_cross_engine.py``).

Semantics match the lean engine: transfers are never aborted; a demand
fetch waits for the whole backlog; eviction lists leave the cache at
planning time; each admitted prefetch is paired with a victim or free slot.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.core.planner import Prefetcher
from repro.core.types import PrefetchProblem
from repro.distsys.events import EventQueue
from repro.distsys.network import Channel, Link
from repro.distsys.server import ItemServer
from repro.simulation.metrics import AccessStats

__all__ = ["Client", "ClientStats"]

ProbabilityProvider = Callable[[int], np.ndarray]

#: Historical name; the dataclass now lives in :mod:`repro.simulation.metrics`
#: so the lean engine, this client, and the fleet share one stats container.
ClientStats = AccessStats


class Client:
    def __init__(
        self,
        server: ItemServer,
        link: Link,
        cache_capacity: int,
        prefetcher: Prefetcher,
        probability_provider: ProbabilityProvider,
        *,
        planning_window: str = "nominal",
    ) -> None:
        if planning_window not in ("nominal", "effective"):
            raise ValueError(f"unknown planning_window {planning_window!r}")
        if cache_capacity < 0:
            raise ValueError("cache_capacity must be non-negative")
        self.server = server
        self.link = link
        self.retrievals = server.retrieval_times(link)
        self.capacity = int(cache_capacity)
        self.prefetcher = prefetcher
        self.provider = probability_provider
        self.planning_window = planning_window

        self.queue = EventQueue()
        self.channel = Channel(link)
        self.cache: set[int] = set()
        self.origin: dict[int, str] = {}
        self.pending: dict[int, float] = {}
        self.frequencies = np.zeros(server.n_items, dtype=np.float64)
        self.stats = ClientStats()

    # ------------------------------------------------------------------
    def _promote(self, item: int) -> None:
        if item in self.pending:
            del self.pending[item]
            self.cache.add(item)
            self.origin[item] = "prefetch"

    def seed(self, item: int, viewing_time: float) -> float:
        """Pre-serve ``item`` at time 0 (warm start), plan, and return the
        time at which the next request should arrive."""
        self.frequencies[item] += 1.0
        if self.capacity > 0:
            self.cache.add(int(item))
            self.origin[int(item)] = "demand"
        self.view(int(item), float(viewing_time), now=0.0)
        return float(viewing_time)

    def request(self, item: int, now: float) -> float:
        """Serve a request arriving at ``now``; returns the access time."""
        item = int(item)
        self.queue.run(until=now)

        if item in self.cache:
            access = 0.0
            self.stats.cache_hits += 1
            if self.origin.get(item) == "prefetch":
                self.stats.prefetches_used += 1
                self.origin[item] = "prefetch-used"
        elif item in self.pending:
            arrival = self.pending[item]
            access = arrival - now
            self.stats.pending_waits += 1
            self.stats.prefetches_used += 1
            self.queue.run(until=arrival)  # delivers item (and earlier ones)
            self.origin[item] = "prefetch-used"
        else:
            _, completion = self.channel.enqueue(now, self.server.size(item))
            access = completion - now
            self.stats.network_demand_time += self.link.transfer_time(self.server.size(item))
            self.stats.misses += 1
            self.queue.run(until=completion)  # backlog drained by then
            if self.capacity > 0:
                if len(self.cache) >= self.capacity:
                    problem = PrefetchProblem(self.provider(item), self.retrievals, 0.0)
                    victim = self.prefetcher.demand_victim(
                        problem,
                        item,
                        sorted(self.cache),
                        cache_capacity=self.capacity,
                        frequencies=self.frequencies,
                    )
                    if victim is not None:
                        self.cache.discard(victim)
                        self.origin.pop(victim, None)
                self.cache.add(item)
                self.origin[item] = "demand"

        self.stats.access_times.append(access)
        self.frequencies[item] += 1.0
        return access

    def view(self, item: int, viewing_time: float, now: float) -> None:
        """Plan and schedule prefetches for the viewing period after ``item``."""
        window = float(viewing_time)
        if self.planning_window == "effective":
            window = max(0.0, window - self.channel.backlog(now))
        problem = PrefetchProblem(self.provider(int(item)), self.retrievals, window)
        outcome = self.prefetcher.plan(
            problem,
            cache=sorted(self.cache),
            cache_capacity=self.capacity - len(self.pending),
            frequencies=self.frequencies,
            pinned=sorted(self.pending),
        )
        for victim in outcome.eject:
            self.cache.discard(victim)
            self.origin.pop(victim, None)
        for f in outcome.prefetch:
            _, completion = self.channel.enqueue(now, self.server.size(f))
            self.pending[f] = completion
            self.stats.prefetches_scheduled += 1
            self.stats.network_prefetch_time += self.link.transfer_time(self.server.size(f))
            self.queue.schedule(completion, lambda it=f: self._promote(it))
        assert len(self.cache) + len(self.pending) <= max(self.capacity, 0)
