"""The prefetching client: cache + planner + one network channel.

This is the event-driven generalisation of the lean §5.3 simulator
(:mod:`repro.simulation.prefetch_cache`): retrieval times derive from item
sizes over a latency/bandwidth link, next-access estimates come from any
provider (the true Markov row, or an online predictor from
:mod:`repro.prediction`), and transfer completions are delivered through an
:class:`repro.distsys.events.EventQueue`.  On equal-size catalogs with a
unit link and the oracle provider it reproduces the lean simulator's access
times *exactly* (see ``tests/integration/test_cross_engine.py``).

Semantics match the lean engine: transfers are never aborted; a demand
fetch waits for the whole backlog; eviction lists leave the cache at
planning time; each admitted prefetch is paired with a victim or free slot.
Cache admission and planning dispatch are shared with the other engines via
:class:`repro.distsys.planning.ClientPlanState`.  Providers here may be
*online* (a predictor whose rows change as it learns), so problems are
re-validated per request and victim solves are never memoized.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.core.planner import Prefetcher
from repro.distsys.events import EventQueue
from repro.distsys.network import Channel, Link
from repro.distsys.planning import ClientPlanState
from repro.distsys.server import ItemServer
from repro.simulation.metrics import AccessStats

__all__ = ["Client", "ClientStats"]

ProbabilityProvider = Callable[[int], np.ndarray]

#: Historical name; the dataclass now lives in :mod:`repro.simulation.metrics`
#: so the lean engine, this client, and the fleet share one stats container.
ClientStats = AccessStats


class Client:
    __slots__ = (
        "server",
        "link",
        "retrievals",
        "capacity",
        "prefetcher",
        "provider",
        "planning_window",
        "queue",
        "channel",
        "state",
        "stats",
        "_transfer",
    )

    def __init__(
        self,
        server: ItemServer,
        link: Link,
        cache_capacity: int,
        prefetcher: Prefetcher,
        probability_provider: ProbabilityProvider,
        *,
        planning_window: str = "nominal",
    ) -> None:
        if planning_window not in ("nominal", "effective"):
            raise ValueError(f"unknown planning_window {planning_window!r}")
        if cache_capacity < 0:
            raise ValueError("cache_capacity must be non-negative")
        self.server = server
        self.link = link
        self.retrievals = server.retrieval_times(link)
        self.capacity = int(cache_capacity)
        self.prefetcher = prefetcher
        self.provider = probability_provider
        self.planning_window = planning_window

        self.queue = EventQueue()
        self.channel = Channel(link)
        self.state = ClientPlanState(
            prefetcher,
            probability_provider,
            self.retrievals,
            self.capacity,
            server.n_items,
        )
        self.stats = ClientStats()
        # Per-item transfer durations: identical floats to
        # link.transfer_time(server.size(i)) — same latency + size/bandwidth
        # arithmetic, vectorised once instead of recomputed per request.
        self._transfer = self.retrievals.tolist()

    # -- state views (tests and examples read these) --------------------
    @property
    def cache(self) -> set[int]:
        return self.state.cache

    @property
    def origin(self) -> dict[int, str]:
        return self.state.origin

    @property
    def pending(self) -> dict[int, float]:
        return self.state.pending

    @property
    def frequencies(self) -> np.ndarray:
        return self.state.frequencies

    # ------------------------------------------------------------------
    def _promote(self, item: int) -> None:
        if item in self.state.pending:
            self.state.promote(item)

    def seed(self, item: int, viewing_time: float) -> float:
        """Pre-serve ``item`` at time 0 (warm start), plan, and return the
        time at which the next request should arrive."""
        item = int(item)
        self.state.observe(item)
        if self.capacity > 0:
            self.state.cache_add(item, "demand")
        self.view(item, float(viewing_time), now=0.0)
        return float(viewing_time)

    def request(self, item: int, now: float) -> float:
        """Serve a request arriving at ``now``; returns the access time."""
        item = int(item)
        state = self.state
        self.queue.run(until=now)

        if item in state.cache:
            access = 0.0
            self.stats.cache_hits += 1
            if state.origin.get(item) == "prefetch":
                self.stats.prefetches_used += 1
                state.origin[item] = "prefetch-used"
        elif item in state.pending:
            arrival = state.pending[item]
            access = arrival - now
            self.stats.pending_waits += 1
            self.stats.prefetches_used += 1
            self.queue.run(until=arrival)  # delivers item (and earlier ones)
            state.origin[item] = "prefetch-used"
        else:
            duration = self._transfer[item]
            _, completion = self.channel.enqueue_duration(now, duration)
            access = completion - now
            self.stats.network_demand_time += duration
            self.stats.misses += 1
            self.queue.run(until=completion)  # backlog drained by then
            state.admit_demand(item)

        self.stats.access_times.append(access)
        state.observe(item)
        return access

    def view(self, item: int, viewing_time: float, now: float) -> None:
        """Plan and schedule prefetches for the viewing period after ``item``."""
        window = float(viewing_time)
        if self.planning_window == "effective":
            window = max(0.0, window - self.channel.backlog(now))
        state = self.state
        outcome = state.plan_view(int(item), window)
        for f in outcome.prefetch:
            duration = self._transfer[f]
            _, completion = self.channel.enqueue_duration(now, duration)
            state.pending_add(f, completion)
            self.stats.prefetches_scheduled += 1
            self.stats.network_prefetch_time += duration
            self.queue.schedule(completion, lambda it=f: self._promote(it))
        assert len(state.cache) + len(state.pending) <= max(self.capacity, 0)
