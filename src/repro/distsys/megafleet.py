"""Mega-fleet engines: vectorized cohort simulation and a hybrid analytic mode.

The event kernel (:mod:`repro.distsys.fleet`) schedules every request,
transfer grant and completion through one heap — exact under any contention,
but topping out around tens of thousands of events per second.  This module
adds the two scale attacks from the ROADMAP:

**Cohort kernel** (:class:`CohortFleet`, ``engine="cohort"``).  Over an
*unbounded* uplink every client owns a private sequential channel, so the
fleet factorises into independent per-client timelines: the event heap, the
:class:`~repro.distsys.network.ServerUplink` grant machinery and all
cross-client ordering disappear, leaving pure per-client float folds
(``completion = max(now, busy_until) + duration + penalty`` — the
:class:`~repro.distsys.network.Channel` arithmetic).  The kernel advances
clients in struct-of-arrays chunks (per-chunk numpy trace/viewing tables,
busy/next-request/stat vectors) step by step, and **memoizes planner
solves across the whole cohort**: clients whose probability provider is the
same row are exchangeable up to their private draws, so a planning state —
``(provider row, item, cache fingerprint, pending fingerprint, window)``,
fingerprints maintained by the existing
:class:`~repro.distsys.planning.ClientPlanState` — is solved once per
distinct key and the shared :class:`~repro.core.planner.PlanOutcome` is
replayed everywhere else.  One SKP solve per distinct plan state instead of
one per request is where the throughput comes from; a finite viewing-time
alphabet (``v_quantum`` on :func:`~repro.workload.population
.zipf_mixture_population`) keeps the key space small.  Per-client results
are **bit-exact** with the event engine when ``concurrency=None`` and no
shared server cache couples clients (pinned by
``tests/distsys/test_megafleet.py``); with finite ``concurrency`` the
kernel applies a mean-field M/G/c waiting-time correction
(:func:`repro.analysis.cacheperf.mgc_waiting_time`) to every
uplink-visible access — a documented approximation, not an exact fold.

**Hybrid analytic mode** (:func:`run_hybrid_fleet`, ``engine="hybrid"``).
Simulates a seeded sample of K *real* clients (per-client draws hash from
``(seed, client id)``, so the sample is bit-identical to K members of the
full fleet) through the event kernel at proportionally scaled concurrency,
then closes the remaining N−K clients analytically: the shared server-cache
tier via the Che characteristic-time cascade
(:func:`~repro.analysis.cacheperf.miss_stream_cascade`), and uplink
queueing via an M/G/c correction iterated to a fixed point between the
sampled makespan and the extrapolated fleet load.  This is how a single
process models a million clients; ``docs/scale.md`` derives the fixed point
and states the validity envelope.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, replace

import numpy as np

from repro.analysis.cacheperf import (
    che_cache_hit_ratio,
    empirical_pdf,
    mgc_waiting_time,
    miss_stream_cascade,
    service_moments,
)
from repro.core.planner import ONLINE_NODE_BUDGET, Prefetcher
from repro.distsys.fleet import FleetConfig, FleetResult, build_client_model
from repro.distsys.network import Link
from repro.distsys.planning import ClientPlanState
from repro.simulation.metrics import (
    AccessStats,
    FleetAggregate,
    aggregate_access_stats,
)
from repro.workload.population import Population

__all__ = [
    "CohortFleet",
    "CohortFleetResult",
    "HybridFleetResult",
    "run_cohort_fleet",
    "run_hybrid_fleet",
    "sample_client_ids",
]

#: Cross-client plan-memo bound: past this many distinct plan states the
#: memo is cleared and refills with the currently-hot states (same policy as
#: ``ClientPlanState._VICTIM_MEMO_LIMIT``, sized for full PlanOutcomes).
_PLAN_MEMO_LIMIT = 1 << 16

#: Struct-of-arrays chunk: how many clients' trace/viewing/stat arrays are
#: resident at once.  Bounds kernel memory at O(chunk × requests) while the
#: cohort memos persist across chunks.
_CHUNK_CLIENTS = 4096

#: Past this many total requests the kernel stops materialising per-client
#: ``AccessStats`` (python lists) and aggregates from pooled numpy arrays
#: instead — same formulas, same floats, no per-request boxing.
_FULL_STATS_LIMIT = 2_000_000

#: Mean-field validity cap: an offered load above this fraction of the slot
#: count is reported as ``saturated`` and the M/G/c wait is evaluated at the
#: cap (the open-queue formula diverges at ρ = 1, but a closed fleet just
#: stretches its makespan).
_SATURATION_CAP = 0.98


class _CohortMemos:
    """Shared solve caches for one cohort (one distinct probability provider).

    Clients whose planner sees the same probability row face identical
    planning problems whenever their (cache, pending, window) fingerprints
    coincide — the solves are pure functions of the key, so both the
    zero-window demand-victim memo and the full viewing-period plan memo can
    be shared across every client of the cohort.
    """

    __slots__ = ("victim_memo", "plan_memo", "static_row", "solves", "hits")

    def __init__(self, static_row: bool) -> None:
        self.victim_memo: dict = {}
        self.plan_memo: dict = {}
        #: Static rows (Zipf planner views) are item-independent, so the
        #: plan key drops the item; Markov/trace rows condition on it.
        self.static_row = static_row
        self.solves = 0
        self.hits = 0

    def plan(self, state: ClientPlanState, item: int, window: float):
        key = (
            -1 if self.static_row else item,
            state.cache_key(),
            state.pending_key(),
            window,
        )
        outcome = self.plan_memo.get(key)
        if outcome is not None:
            self.hits += 1
            for victim in outcome.eject:
                state.cache_discard(victim)
            return outcome
        self.solves += 1
        outcome = state.plan_view(item, window)  # applies eject itself
        if len(self.plan_memo) >= _PLAN_MEMO_LIMIT:
            self.plan_memo.clear()
        self.plan_memo[key] = outcome
        return outcome


def _flow_backlog(out: deque, now: float) -> float:
    """This client's queued work at ``now`` — the exact
    :meth:`~repro.distsys.network.ServerUplink.backlog` fold.

    ``out`` holds ``(completion, duration)`` per outstanding transfer in
    submission (= completion) order.  The head entry is in flight, so it
    contributes its remaining time (penalty included); the rest are queued
    and contribute their bare durations — the uplink adds the server
    penalty only at grant, so queued transfers must not carry it here.
    """
    while out and out[0][0] <= now:
        out.popleft()
    if not out:
        return 0.0
    backlog = out[0][0] - now
    for j in range(1, len(out)):
        backlog += out[j][1]
    return backlog


def _cohort_key(workload) -> object:
    """Which cohort a client belongs to: the identity of its provider rows.

    Zipf-style clients are grouped by row *value* (equal planner views share
    solves even across distinct arrays); Markov/trace clients by transition
    identity (hashing an n² matrix per client would cost more than it
    saves — :func:`~repro.workload.population.trace_population` shares one
    matrix object fleet-wide, which is the case that matters).
    """
    if workload.probabilities is not None:
        return workload.probabilities.tobytes()
    return ("transition", id(workload.transition))


@dataclass(frozen=True)
class CohortFleetResult(FleetResult):
    """A :class:`FleetResult` plus cohort-kernel diagnostics.

    ``contention_wait`` is the mean-field per-transfer queueing delay added
    to every uplink-visible access (0.0 when the uplink is unbounded —
    the bit-exact regime); ``saturated`` flags runs whose extrapolated
    offered load hit the mean-field validity cap.
    """

    n_cohorts: int = 0
    plan_solves: int = 0
    plan_memo_hits: int = 0
    contention_wait: float = 0.0
    saturated: bool = False


class CohortFleet:
    """Struct-of-arrays cohort kernel over an unbounded-uplink fleet.

    See the module docstring for semantics.  ``stats`` selects the output
    shape: ``"full"`` materialises per-client :class:`AccessStats`
    (bit-exact comparisons, windowed drift metrics), ``"pooled"``
    aggregates from numpy pools (mega runs), ``"auto"`` switches on
    :data:`_FULL_STATS_LIMIT`.
    """

    def __init__(
        self,
        population: Population,
        config: FleetConfig = FleetConfig(),
        *,
        server_cache=None,
        stats: str = "auto",
    ) -> None:
        if server_cache is not None:
            raise ValueError(
                "the cohort engine factorises the fleet into independent "
                "clients; a shared server cache couples them — use the "
                "event engine, or the hybrid engine's analytic closure"
            )
        if stats not in ("auto", "full", "pooled"):
            raise ValueError(f"stats must be auto/full/pooled, got {stats!r}")
        self.population = population
        self.config = config
        self.link = Link(latency=config.latency, bandwidth=config.bandwidth)
        self.retrievals = self.link.retrieval_times(population.sizes)
        self.prefetcher = Prefetcher(
            strategy=config.strategy,
            variant=config.skp_variant,
            sub_arbitration=config.sub_arbitration,
            # Same guard as the event engine: learned rows may carry tied
            # probabilities that defeat bound pruning (see core.planner).
            node_budget=ONLINE_NODE_BUDGET if config.model_source == "online" else None,
        )
        #: Cohort-level memoization is sound only when provider rows never
        #: change (oracle model) and plans ignore the per-client frequency
        #: vectors (no LFU/DS sub-arbitration).  Otherwise the kernel still
        #: folds exactly — it just solves per client, like the event engine.
        self.memoize = (
            config.model_source == "oracle" and config.sub_arbitration is None
        )
        self._memos: dict[object, _CohortMemos] = {}
        total = sum(len(c.trace) for c in population.clients)
        if stats == "auto":
            stats = "full" if total <= _FULL_STATS_LIMIT else "pooled"
        self.stats_mode = stats

    # ------------------------------------------------------------------
    def _memos_for(self, workload) -> _CohortMemos | None:
        if not self.memoize:
            return None
        key = _cohort_key(workload)
        memos = self._memos.get(key)
        if memos is None:
            memos = self._memos[key] = _CohortMemos(
                static_row=workload.probabilities is not None
            )
        return memos

    def run(self) -> CohortFleetResult:
        config = self.config
        population = self.population
        n_items = population.n_items
        capacity = int(config.cache_capacity)
        penalty = float(config.miss_penalty)
        transfer = self.retrievals.tolist()
        effective = config.planning_window == "effective"
        full_stats = self.stats_mode == "full"

        KIND_HIT = AccessStats.KIND_HIT
        KIND_WAIT = AccessStats.KIND_WAIT
        KIND_MISS = AccessStats.KIND_MISS

        clients = population.clients
        n_clients = len(clients)

        # -- fleet-level accumulators ----------------------------------
        all_stats: list[AccessStats] = []
        pooled_access: list[np.ndarray] = []
        pooled_kinds: list[np.ndarray] = []
        per_client_mean: list[float] = []
        total_hits = total_waits = total_misses = 0
        total_sched = total_used = 0
        net_prefetch = net_demand = 0.0
        transfers = 0
        total_service = prefetch_service = 0.0
        service_sq = 0.0
        makespan = 0.0

        for lo in range(0, n_clients, _CHUNK_CLIENTS):
            chunk = clients[lo:lo + _CHUNK_CLIENTS]
            b = len(chunk)
            # Struct-of-arrays chunk state, one row per client.  Hot scalar
            # fields live in plain Python lists — per-element numpy access
            # boxes a scalar per read/write, which at one read+write per
            # request costs more than the fold itself; numpy takes over at
            # the aggregation boundary.
            items_rows = [[int(x) for x in w.trace.items] for w in chunk]
            views_rows = [w.trace.viewing_times.tolist() for w in chunk]
            lens = [len(r) for r in items_rows]
            steps = max(lens)
            busy = [0.0] * b
            t_next = [0.0] * b
            # Outstanding (completion, duration) per client, for the exact
            # effective-window backlog fold; untracked in nominal mode.
            outstanding = [deque() for _ in range(b)] if effective else None
            access_rows: list[list[float]] = [[] for _ in range(b)]
            reqt_rows: list[list[float]] = [[] for _ in range(b)] if full_stats else None
            kind_rows: list[list[int]] = [[] for _ in range(b)]
            hits = [0] * b
            waits = [0] * b
            misses = [0] * b
            sched = [0] * b
            used = [0] * b
            npref = [0.0] * b
            ndem = [0.0] * b

            states: list[ClientPlanState] = []
            memos: list[_CohortMemos | None] = []
            for w in chunk:
                model = build_client_model(config, n_items)
                state = ClientPlanState(
                    self.prefetcher,
                    model.conditional_row if model is not None else w.provider(),
                    self.retrievals,
                    capacity,
                    n_items,
                    trusted_provider=True,
                    static_provider=model is None,
                    model=model,
                )
                memo = self._memos_for(w)
                if memo is not None and state._victim_memo is not None:
                    # Share the zero-window victim memo across the cohort —
                    # same key space, same soundness condition.
                    state._victim_memo = memo.victim_memo
                states.append(state)
                memos.append(memo)

            # -- warm start (the event engine's _begin) -----------------
            for i, w in enumerate(chunk):
                now = float(w.start_time)
                state = states[i]
                item = int(w.initial_item)
                state.observe(item)
                if capacity > 0:
                    state.cache_add(item, "demand")
                viewing = float(w.initial_viewing_time)
                window = viewing
                if effective:
                    window = max(0.0, viewing - _flow_backlog(outstanding[i], now))
                memo = memos[i]
                outcome = (
                    memo.plan(state, item, window)
                    if memo is not None
                    else state.plan_view(item, window)
                )
                for f in outcome.prefetch:
                    duration = transfer[f]
                    start = busy[i] if busy[i] > now else now
                    svc = duration + penalty
                    completion = start + svc
                    busy[i] = completion
                    state.pending_add(f, completion)
                    if outstanding is not None:
                        outstanding[i].append((completion, duration))
                    sched[i] += 1
                    npref[i] += duration
                    transfers += 1
                    total_service += svc
                    prefetch_service += svc
                    service_sq += svc * svc
                t_next[i] = now + viewing

            # -- step-major sweep: one trace column per pass ------------
            # All clients advance through request k before any sees k+1, so
            # the cohort plan memo warms on the hot early states before the
            # long tail of each trace replays them.
            for k in range(steps):
                for i in range(b):
                    if k >= lens[i]:
                        continue
                    state = states[i]
                    item = items_rows[i][k]
                    now = t_next[i]
                    pending = state.pending
                    if pending:
                        done = [it for it, arr in pending.items() if arr <= now]
                        for it in done:
                            state.promote(it)
                    cache = state.cache
                    if item in cache:
                        hits[i] += 1
                        if state.origin.get(item) == "prefetch":
                            used[i] += 1
                            state.origin[item] = "prefetch-used"
                        t_serve = now
                        kind = KIND_HIT
                    elif item in pending:
                        arrival = pending[item]
                        done = [it for it, arr in pending.items() if arr <= arrival]
                        for it in done:
                            state.promote(it)
                        waits[i] += 1
                        used[i] += 1
                        state.origin[item] = "prefetch-used"
                        t_serve = arrival
                        kind = KIND_WAIT
                    else:
                        duration = transfer[item]
                        ndem[i] += duration
                        misses[i] += 1
                        start = busy[i] if busy[i] > now else now
                        svc = duration + penalty
                        completion = start + svc
                        busy[i] = completion
                        transfers += 1
                        total_service += svc
                        service_sq += svc * svc
                        # The whole backlog drained before the demand
                        # started (per-flow FIFO): promote everything.
                        if pending:
                            for it in list(pending):
                                state.promote(it)
                        state.admit_demand(item)
                        t_serve = completion
                        kind = KIND_MISS
                    access_rows[i].append(t_serve - now)
                    if reqt_rows is not None:
                        reqt_rows[i].append(now)
                    kind_rows[i].append(kind)
                    state.observe(item)
                    viewing = views_rows[i][k]
                    window = viewing
                    if effective:
                        window = max(
                            0.0, viewing - _flow_backlog(outstanding[i], t_serve)
                        )
                    memo = memos[i]
                    outcome = (
                        memo.plan(state, item, window)
                        if memo is not None
                        else state.plan_view(item, window)
                    )
                    for f in outcome.prefetch:
                        duration = transfer[f]
                        start = busy[i] if busy[i] > t_serve else t_serve
                        svc = duration + penalty
                        completion = start + svc
                        busy[i] = completion
                        state.pending_add(f, completion)
                        if outstanding is not None:
                            outstanding[i].append((completion, duration))
                        sched[i] += 1
                        npref[i] += duration
                        transfers += 1
                        total_service += svc
                        prefetch_service += svc
                        service_sq += svc * svc
                    t_next[i] = t_serve + viewing

            # -- fold the chunk into the fleet accumulators -------------
            makespan = max(makespan, max(t_next), max(busy))
            total_hits += sum(hits)
            total_waits += sum(waits)
            total_misses += sum(misses)
            total_sched += sum(sched)
            total_used += sum(used)
            net_prefetch += sum(npref)
            net_demand += sum(ndem)
            if full_stats:
                for i in range(b):
                    stats = AccessStats(
                        cache_hits=hits[i],
                        pending_waits=waits[i],
                        misses=misses[i],
                        prefetches_scheduled=sched[i],
                        prefetches_used=used[i],
                        network_prefetch_time=npref[i],
                        network_demand_time=ndem[i],
                        access_times=access_rows[i],
                        request_times=reqt_rows[i],
                        serve_kinds=kind_rows[i],
                    )
                    all_stats.append(stats)
            else:
                for i in range(b):
                    row = np.asarray(access_rows[i], dtype=np.float64)
                    pooled_access.append(row)
                    pooled_kinds.append(np.asarray(kind_rows[i], dtype=np.int8))
                    per_client_mean.append(float(row.mean()) if row.size else float("nan"))

        # -- contention: mean-field M/G/c correction --------------------
        wait, saturated = 0.0, False
        if config.concurrency is not None and transfers and makespan > 0:
            mean_service = total_service / transfers
            var = max(0.0, service_sq / transfers - mean_service * mean_service)
            scv = var / (mean_service * mean_service) if mean_service > 0 else 0.0
            uplink_visible = total_waits + total_misses
            base = makespan
            # Fixed point between the queueing delay and the stretched
            # makespan it implies: the delay slows every client's request
            # cycle down, which lowers the arrival rate, which lowers the
            # delay.  The map is monotone decreasing in the delay, so the
            # half-step damping cannot 2-cycle between the clamped and
            # unclamped branches of the saturation cap.
            for _ in range(200):
                wait, saturated = _contention_wait(
                    transfers / makespan, int(config.concurrency), mean_service, scv
                )
                stretched = base + wait * uplink_visible / n_clients
                done = abs(stretched - makespan) <= 1e-9 * max(1.0, makespan)
                makespan = 0.5 * (makespan + stretched)
                if done:
                    makespan = stretched
                    break
            if wait > 0.0:
                if full_stats:
                    for stats in all_stats:
                        times = stats.access_times
                        for j, kind in enumerate(stats.serve_kinds):
                            if kind != KIND_HIT:
                                times[j] += wait
                else:
                    for acc, knd in zip(pooled_access, pooled_kinds):
                        acc[knd != KIND_HIT] += wait

        # -- aggregate ---------------------------------------------------
        if full_stats:
            aggregate = aggregate_access_stats(all_stats)
            client_stats = tuple(all_stats)
        else:
            aggregate = self._pooled_aggregate(
                pooled_access, per_client_mean,
                total_hits, total_waits, total_misses,
                total_sched, total_used, net_prefetch, net_demand,
            )
            client_stats = ()

        offered = total_service / makespan if makespan > 0 else 0.0
        slots = config.concurrency
        # What the event engine would have popped: one _begin per client, one
        # _request per trace entry, one completion per granted transfer.
        events = n_clients + population.total_requests + transfers
        solves = sum(m.solves for m in self._memos.values())
        hits_memo = sum(m.hits for m in self._memos.values())
        return CohortFleetResult(
            config=config,
            client_stats=client_stats,
            aggregate=aggregate,
            makespan=makespan,
            events=events,
            offered_load=offered,
            server_utilization=offered / slots if slots else float("nan"),
            prefetch_load_frac=(
                prefetch_service / total_service if total_service else 0.0
            ),
            server_cache_hit_rate=float("nan"),
            transfers_granted=transfers,
            n_cohorts=len(self._memos) if self.memoize else 0,
            plan_solves=solves,
            plan_memo_hits=hits_memo,
            contention_wait=wait,
            saturated=saturated,
        )

    @staticmethod
    def _pooled_aggregate(
        pooled_access, per_client_mean,
        hits, waits, misses, scheduled, used, net_prefetch, net_demand,
    ) -> FleetAggregate:
        """The :func:`aggregate_access_stats` arithmetic over numpy pools."""
        pooled = (
            np.concatenate(pooled_access) if pooled_access else np.empty(0)
        )
        requests = hits + waits + misses
        per_client = np.asarray(per_client_mean, dtype=np.float64)
        if per_client.size and float((per_client**2).sum()) > 0.0:
            fairness = float(per_client.sum()) ** 2 / (
                per_client.size * float((per_client**2).sum())
            )
        else:
            fairness = 1.0
        if pooled.size:
            p50, p95, p99 = (
                float(np.percentile(pooled, q)) for q in (50, 95, 99)
            )
            mean = float(pooled.mean())
        else:
            p50 = p95 = p99 = mean = float("nan")
        return FleetAggregate(
            n_clients=len(per_client_mean),
            requests=requests,
            mean_access_time=mean,
            p50_access_time=p50,
            p95_access_time=p95,
            p99_access_time=p99,
            hit_rate=hits / requests if requests else float("nan"),
            prefetch_precision=used / scheduled if scheduled else float("nan"),
            network_prefetch_time=net_prefetch,
            network_demand_time=net_demand,
            fairness=fairness,
            per_client_mean=per_client,
        )


def run_cohort_fleet(
    population: Population,
    config: FleetConfig = FleetConfig(),
    *,
    server_cache=None,
    stats: str = "auto",
) -> CohortFleetResult:
    """Build and run the cohort kernel in one call."""
    return CohortFleet(
        population, config, server_cache=server_cache, stats=stats
    ).run()


def _contention_wait(
    arrival_rate: float, servers: int, mean_service: float, scv: float
) -> tuple[float, bool]:
    """Mean M/G/c queueing delay, capped at the mean-field validity edge.

    A closed fleet never diverges the way the open-queue formula does at
    ρ = 1 (its makespan stretches instead), so at or beyond
    :data:`_SATURATION_CAP` the wait is evaluated at the cap and the run is
    flagged ``saturated`` — consumers should treat those numbers as a lower
    bound, not a prediction (see ``docs/scale.md``).
    """
    if mean_service <= 0.0:
        return 0.0, False
    offered = arrival_rate * mean_service
    cap = _SATURATION_CAP * servers
    saturated = offered >= cap
    if saturated:
        arrival_rate = cap / mean_service
    return mgc_waiting_time(arrival_rate, servers, mean_service, scv), saturated


# ---------------------------------------------------------------------------
# Hybrid analytic mode
# ---------------------------------------------------------------------------

def sample_client_ids(n_clients: int, sample_size: int) -> list[int]:
    """K deterministic, evenly spaced client ids out of ``n_clients``.

    Evenly spaced rather than a prefix so workloads whose structure varies
    with the id (trace slices, staggered starts) are sampled across the
    fleet, not from one end; deterministic so hybrid runs are reproducible
    and CRN-comparable against the full event run.
    """
    n = int(n_clients)
    k = min(int(sample_size), n)
    if k < 1:
        raise ValueError("sample_size must be positive")
    return [(j * n) // k for j in range(k)]


@dataclass(frozen=True)
class HybridFleetResult(FleetResult):
    """Fleet-scale metrics from a sampled simulation plus analytic closure.

    The :class:`FleetResult` fields describe the *modeled* fleet of
    ``n_modeled`` clients: ``aggregate`` / ``client_stats`` are the sampled
    clients' statistics with the fleet-vs-sample waiting-time correction
    ``delta_wait`` folded into every uplink-visible access, ``makespan`` /
    ``offered_load`` / ``server_utilization`` are the fixed-point
    extrapolations, and ``events`` / ``transfers_granted`` count what was
    actually simulated (the sample).  Extra fields carry the closure's
    diagnostics.
    """

    n_modeled: int = 0
    sample_size: int = 0
    wait_sample: float = 0.0
    wait_fleet: float = 0.0
    delta_wait: float = 0.0
    fixed_point_iterations: int = 0
    converged: bool = True
    saturated: bool = False
    che_client_hit_rate: float = 0.0
    che_server_hit_rate: float = 0.0

    @property
    def n_clients(self) -> int:  # modeled, not simulated
        return self.n_modeled


def run_hybrid_fleet(
    population_factory,
    n_clients: int,
    config: FleetConfig = FleetConfig(),
    *,
    sample_size: int | None = None,
    server_cache_size: int = 0,
    max_iterations: int = 50,
) -> HybridFleetResult:
    """Model ``n_clients`` clients from a simulated sample of K of them.

    ``population_factory(client_ids)`` must return the :class:`Population`
    holding exactly those members of the full fleet (the ``client_ids``
    parameter of the population builders).  ``server_cache_size > 0``
    replaces the shared server cache with its Che closure: the expected
    backing-store penalty ``miss_penalty × (1 − h_server)`` is folded into
    every transfer, where ``h_server`` comes from the client→server
    miss-stream cascade.  See ``docs/scale.md`` for the derivation and the
    validity envelope.
    """
    from repro.distsys.fleet import run_fleet

    n = int(n_clients)
    k_ids = sample_client_ids(
        n, config.hybrid_sample if sample_size is None else sample_size
    )
    k = len(k_ids)
    sample = population_factory(k_ids)
    if sample.n_clients != k:
        raise ValueError(
            f"population_factory returned {sample.n_clients} clients "
            f"for {k} requested ids"
        )

    # -- cache-tier closure (Che): client tier, then the shared server tier.
    pooled_pdf = empirical_pdf(
        np.concatenate([c.trace.items for c in sample.clients]), sample.n_items
    )
    che_client = (
        che_cache_hit_ratio(pooled_pdf, config.cache_capacity)
        if config.cache_capacity > 0
        else 0.0
    )
    (_, che_server), (miss_pdf, _) = miss_stream_cascade(
        pooled_pdf, [config.cache_capacity, int(server_cache_size)]
    )
    effective_penalty = config.miss_penalty * (1.0 - che_server)

    # -- simulate the sample at proportionally scaled concurrency ----------
    c_full = config.concurrency
    c_sample = (
        None if c_full is None else max(1, round(int(c_full) * k / n))
    )
    sample_config = replace(
        config,
        engine="event",
        concurrency=c_sample,
        miss_penalty=effective_penalty,
    )
    res = run_fleet(sample, sample_config)

    # -- uplink fixed point: extrapolate load, correct queueing ------------
    total_service = res.offered_load * res.makespan
    transfers = res.transfers_granted
    per_client_service = total_service / k
    transfers_per_client = transfers / k
    uplink_accesses = sum(s.pending_waits + s.misses for s in res.client_stats)
    uplink_per_client = uplink_accesses / k

    wait_sample = wait_fleet = 0.0
    saturated = False
    converged = True
    iterations = 0
    makespan = res.makespan
    if c_full is not None and transfers and res.makespan > 0:
        # Service-time moments from the analytic uplink mix (the client-tier
        # miss stream): deterministic per item, general over the mix.
        link = Link(latency=config.latency, bandwidth=config.bandwidth)
        per_item_service = link.retrieval_times(sample.sizes) + effective_penalty
        _, scv = service_moments(miss_pdf, per_item_service)
        mean_service = total_service / transfers
        wait_sample, sat_k = _contention_wait(
            transfers / res.makespan, int(c_sample), mean_service, scv
        )
        converged = False
        for iterations in range(1, max_iterations + 1):
            rate = transfers_per_client * n / makespan
            wait_fleet, saturated = _contention_wait(
                rate, int(c_full), mean_service, scv
            )
            delta = wait_fleet - wait_sample
            new_makespan = res.makespan + max(0.0, delta) * uplink_per_client
            if abs(new_makespan - makespan) <= 1e-9 * max(1.0, makespan):
                makespan = new_makespan
                converged = True
                break
            # Half-step damping: the wait-vs-makespan map is monotone
            # decreasing, so the undamped iteration can 2-cycle around the
            # saturation cap instead of settling on the fixed point.
            makespan = 0.5 * (makespan + new_makespan)
        saturated = saturated or sat_k

    delta_wait = wait_fleet - wait_sample

    # -- fold the correction into the sampled per-request records ----------
    client_stats = res.client_stats
    if delta_wait != 0.0:
        adjusted = []
        for s in client_stats:
            times = [
                max(0.0, t + delta_wait) if kind != AccessStats.KIND_HIT else t
                for t, kind in zip(s.access_times, s.serve_kinds)
            ]
            adjusted.append(
                AccessStats(
                    cache_hits=s.cache_hits,
                    pending_waits=s.pending_waits,
                    misses=s.misses,
                    prefetches_scheduled=s.prefetches_scheduled,
                    prefetches_used=s.prefetches_used,
                    network_prefetch_time=s.network_prefetch_time,
                    network_demand_time=s.network_demand_time,
                    access_times=times,
                    request_times=list(s.request_times),
                    serve_kinds=list(s.serve_kinds),
                )
            )
        client_stats = tuple(adjusted)
    aggregate = aggregate_access_stats(list(client_stats))

    offered = per_client_service * n / makespan if makespan > 0 else 0.0
    return HybridFleetResult(
        config=config,
        client_stats=client_stats,
        aggregate=aggregate,
        makespan=makespan,
        events=res.events,
        offered_load=offered,
        server_utilization=(
            offered / int(c_full) if c_full is not None else float("nan")
        ),
        prefetch_load_frac=res.prefetch_load_frac,
        server_cache_hit_rate=(
            che_server if server_cache_size > 0 else float("nan")
        ),
        transfers_granted=transfers,
        n_modeled=n,
        sample_size=k,
        wait_sample=wait_sample,
        wait_fleet=wait_fleet,
        delta_wait=delta_wait,
        fixed_point_iterations=iterations,
        converged=converged,
        saturated=saturated,
        che_client_hit_rate=che_client,
        che_server_hit_rate=che_server,
    )
