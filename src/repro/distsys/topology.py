"""Edge-proxy cache hierarchies: multi-tier topologies with per-tier speculation.

PR 2's fleet is flat: N clients → one contended :class:`ServerUplink` → one
:class:`ItemServer`.  Production information systems interpose shared
edge/proxy caches between clients and the origin, and speculation at a
*shared* tier is qualitatively different from speculation at a private
client cache: one client's predictor warms another client's hits, and proxy
prefetch traffic competes with everyone's demand misses on the origin
uplink.  This module grows the fleet into a :class:`CacheNetwork` of
:class:`ProxyNode` tiers:

* every proxy owns a shared cache (any :mod:`repro.cache` policy), an
  uplink toward its parent (:class:`ServerUplink` semantics per inter-tier
  link: per-stream FIFO, the head transfer competing for parent slots) and
  optionally its own predictor + prefetch planner (reusing
  :mod:`repro.prediction` and the SKP machinery) with a per-tier in-flight
  prefetch budget;
* requests route client → edge → … → origin with miss propagation:
  a proxy hit is served over the proxy's delivery uplink; a miss triggers a
  store-and-forward fetch from the parent (concurrent requests for the same
  item coalesce onto one upstream transfer), the item is admitted into the
  proxy cache per its policy, and every waiter is then served;
* completions are event-delivered on the shared
  :class:`~repro.distsys.events.EventQueue`, so the whole hierarchy shares
  one deterministic timeline.

A proxy with no cache and no prefetcher is **pass-through**: it relays each
child submission verbatim (same flow id, same duration, synchronously) to
its parent, adding nothing to the timeline.  The ``star`` topology wires
every client through one pass-through proxy, which therefore reproduces
:func:`repro.distsys.fleet.run_fleet` *bit-exactly* (see
``tests/integration/test_cross_engine.py``).

Speculation placement is a knob (``placement``): ``"client"`` keeps the
paper's private-cache prefetching, ``"edge"`` moves it into the shared edge
tier (PPE-style predictive proxies), ``"both"`` runs them together and
``"none"`` disables speculation everywhere — with common random numbers
across the sweep, so differences are placement effects.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from collections.abc import Callable

import numpy as np

from repro.cache.base import Cache
from repro.core.planner import ONLINE_NODE_BUDGET, Prefetcher
from repro.core.types import PrefetchProblem
from repro.distsys.events import EventQueue
from repro.distsys.fleet import FleetClient, build_client_model, run_to_quiescence
from repro.distsys.network import Link, ServerUplink
from repro.distsys.server import ItemServer
from repro.prediction.base import AccessPredictor
from repro.simulation.metrics import AccessStats, FleetAggregate, aggregate_access_stats
from repro.util.rng import derive_seed
from repro.workload.population import Population

__all__ = [
    "TopologyConfig",
    "ProxyStats",
    "ProxyNode",
    "TierSummary",
    "TopologyResult",
    "CacheNetwork",
    "run_topology",
    "TOPOLOGIES",
    "register_topology",
    "topology_names",
]

_PLACEMENTS = ("none", "client", "edge", "both")


@dataclass(frozen=True)
class TopologyConfig:
    """Knobs of one cache-hierarchy run.

    The client-tier fields mirror :class:`~repro.distsys.fleet.FleetConfig`
    exactly; the ``edge_*`` / ``mid_*`` fields shape the proxy tiers the
    selected ``topology`` builds.  ``placement`` decides where speculation
    runs: at the clients, at the edge proxies, at both, or nowhere — it
    gates the machinery, so sweeping it compares identical workloads.
    """

    topology: str = "tree"
    n_edges: int = 2
    # -- client tier (FleetConfig semantics) ---------------------------
    cache_capacity: int = 8
    strategy: str = "skp"  # "none" | "kp" | "skp"
    sub_arbitration: str | None = None  # None | "lfu" | "ds"
    skp_variant: str = "corrected"
    planning_window: str = "nominal"  # "nominal" | "effective"
    latency: float = 0.0  # client access link
    bandwidth: float = 1.0
    # -- speculation placement ----------------------------------------
    placement: str = "both"  # "none" | "client" | "edge" | "both"
    # -- edge tier -----------------------------------------------------
    edge_cache: str = "lru"
    edge_cache_size: int = 0  # 0 = pass-through edge proxies
    edge_predictor: str = "markov"
    edge_strategy: str = "skp"  # proxy planner: "skp" | "kp"
    edge_prefetch_budget: int = 4  # max speculative fetches in flight per proxy
    edge_prefetch_window: float = 30.0  # planning window of the proxy planner
    edge_delivery_concurrency: int | None = None  # proxy egress slots (None = unbounded)
    edge_uplink_streams: int = 4  # parallel upstream flows per edge proxy (1 = strict sequential link)
    edge_latency: float = 0.0  # edge → parent hop
    edge_bandwidth: float = 1.0
    # -- mid tier (two-tier topology; cache only, no speculation) ------
    mid_cache: str = "lru"
    mid_cache_size: int = 0
    mid_uplink_streams: int = 4
    mid_latency: float = 0.0  # mid → origin hop
    mid_bandwidth: float = 1.0
    # -- origin --------------------------------------------------------
    concurrency: int | None = 4  # origin uplink slots; None = unbounded
    discipline: str = "fifo"  # "fifo" | "fair"
    miss_penalty: float = 0.0  # origin backing-store service penalty
    # -- client planning model (FleetConfig semantics) ------------------
    model_source: str = "oracle"  # "oracle" | "online"
    online_predictor: str = "markov:ewma"

    def __post_init__(self) -> None:
        if self.model_source not in ("oracle", "online"):
            raise ValueError(
                f"model_source must be 'oracle' or 'online', got {self.model_source!r}"
            )
        if self.topology not in TOPOLOGIES:
            raise ValueError(
                f"unknown topology {self.topology!r}; one of {topology_names()}"
            )
        if self.placement not in _PLACEMENTS:
            raise ValueError(f"placement must be one of {_PLACEMENTS}, got {self.placement!r}")
        if self.n_edges < 1:
            raise ValueError("n_edges must be positive")
        if self.cache_capacity < 0 or self.edge_cache_size < 0 or self.mid_cache_size < 0:
            raise ValueError("cache sizes must be non-negative")
        if self.planning_window not in ("nominal", "effective"):
            raise ValueError(f"unknown planning_window {self.planning_window!r}")
        if self.edge_strategy not in ("skp", "kp"):
            raise ValueError(f"edge_strategy must be 'skp' or 'kp', got {self.edge_strategy!r}")
        if self.edge_prefetch_budget < 0:
            raise ValueError("edge_prefetch_budget must be non-negative")
        if self.edge_prefetch_window < 0:
            raise ValueError("edge_prefetch_window must be non-negative")
        if self.edge_uplink_streams < 1 or self.mid_uplink_streams < 1:
            raise ValueError("uplink_streams must be positive")


# ---------------------------------------------------------------------------
# Proxy mechanism
# ---------------------------------------------------------------------------

class _FreeService:
    """Server stand-in for a proxy's delivery uplink: items are local."""

    def serve(self, item: int) -> float:
        return 0.0


@dataclass(slots=True)
class _ChildRequest:
    """One child transfer moving through a proxy.

    ``ready`` flips when the item is locally available (hit, or the upstream
    fetch landed); the transfer is released to the delivery uplink only once
    it is ready *and* every earlier request of its flow has been released —
    per-flow submission-order delivery, the same non-preemptive sequential
    downlink the flat fleet's :class:`ServerUplink` guarantees (a demand
    completion must imply the client's whole backlog drained, §2).
    """

    flow: object
    item: int
    duration: float
    on_complete: Callable[[float], None]
    kind: str
    on_grant: Callable[[int, float], None] | None
    ready: bool = False


@dataclass(slots=True)
class _PendingFetch:
    """An upstream fetch in flight: its trigger kind plus parked waiters.

    ``speculative`` is True only when *this* proxy's planner issued the
    fetch — a child's prefetch miss also travels upstream with
    ``kind="prefetch"`` but is the child's speculation, not ours.
    """

    kind: str  # "demand" | "prefetch"
    speculative: bool = False
    waiters: list[_ChildRequest] = field(default_factory=list)


@dataclass
class ProxyStats:
    """Demand-path accounting of one proxy (child prefetch traffic excluded).

    ``hits``/``misses`` count child *demand* requests against the proxy
    cache — the hit ratio the Che approximation predicts
    (:mod:`repro.analysis.cacheperf`).  ``prefetches_issued`` are the
    proxy's own speculative upstream fetches; ``prefetches_used`` counts
    those later consulted by a demand (as a hit, or as a
    ``prefetch_waits`` demand that arrived mid-flight);
    ``coalesced_waits`` are demands folded onto an upstream fetch already
    in flight.
    """

    requests: int = 0
    hits: int = 0
    misses: int = 0
    coalesced_waits: int = 0
    upstream_demand_fetches: int = 0
    prefetches_issued: int = 0
    prefetches_used: int = 0
    prefetch_waits: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else float("nan")

    @property
    def prefetch_precision(self) -> float:
        if self.prefetches_issued == 0:
            return float("nan")
        return self.prefetches_used / self.prefetches_issued


class ProxyNode:
    """One shared cache tier node between children and a parent.

    Implements the same child-facing interface as
    :class:`~repro.distsys.network.ServerUplink` (``submit`` / ``backlog``),
    so a :class:`~repro.distsys.fleet.FleetClient` — or another proxy —
    attaches to either interchangeably.

    With ``cache=None`` and no speculation the proxy is **pass-through**:
    every submission is relayed verbatim (synchronously, preserving the flow
    id and duration), making the node invisible on the timeline.  With a
    cache, requests are served store-and-forward: hits go out over the
    proxy's ``delivery`` uplink immediately; misses fetch from the parent
    first (coalescing concurrent requests for the same item), admit the item
    per the cache's own policy, then serve every waiter.

    A predictor (any :class:`~repro.prediction.base.AccessPredictor`)
    observes the aggregated child *demand* stream — the shared-tier effect:
    client A's history predicts client B's future.  After each demand the
    proxy plans speculative upstream fetches with the SKP (or KP) solver
    over the predictor's distribution, restricted to items neither cached
    nor pending, truncated to the in-flight ``prefetch_budget``.
    """

    def __init__(
        self,
        name: str,
        queue: EventQueue,
        parent,
        server: ItemServer,
        link_up: Link,
        *,
        cache: Cache | None = None,
        predictor: AccessPredictor | None = None,
        strategy: str = "skp",
        skp_variant: str = "corrected",
        prefetch_budget: int = 0,
        prefetch_window: float = 30.0,
        delivery_concurrency: int | None = None,
        discipline: str = "fifo",
        uplink_streams: int = 1,
    ) -> None:
        self.name = str(name)
        self.queue = queue
        self.parent = parent
        self.server = server
        self.link_up = link_up
        self.cache = cache
        self.predictor = predictor
        # Proxy speculation always plans from a learned edge predictor's
        # rows, so the tied-probability node budget applies unconditionally.
        self.planner = Prefetcher(
            strategy=strategy, variant=skp_variant, node_budget=ONLINE_NODE_BUDGET
        )
        self.prefetch_budget = int(prefetch_budget)
        self.prefetch_window = float(prefetch_window)
        self.uplink_streams = max(1, int(uplink_streams))
        self.speculative = (
            cache is not None and predictor is not None and self.prefetch_budget > 0
        )
        self.transparent = cache is None and not self.speculative
        self.delivery = ServerUplink(
            queue, _FreeService(), concurrency=delivery_concurrency, discipline=discipline
        )
        self.retrievals_up = link_up.retrieval_times(server.sizes)
        self.stats = ProxyStats()
        self._pending: dict[int, _PendingFetch] = {}
        self._origin: dict[int, str] = {}
        self._flows: dict[object, deque[_ChildRequest]] = {}
        self._next_stream = 0
        self._in_flight_prefetches = 0

    # -- child-facing interface (ServerUplink-compatible) ---------------
    def submit(
        self,
        flow,
        item: int,
        duration: float,
        now: float,
        on_complete: Callable[[float], None],
        *,
        kind: str = "demand",
        on_grant: Callable[[int, float], None] | None = None,
    ) -> None:
        if self.transparent:
            self.parent.submit(
                flow, item, duration, now, on_complete, kind=kind, on_grant=on_grant
            )
            return
        item = int(item)
        demand = kind == "demand"
        if demand:
            self.stats.requests += 1
            if self.predictor is not None:
                self.predictor.update(item)
        request = _ChildRequest(flow, item, float(duration), on_complete, kind, on_grant)
        self._flows.setdefault(flow, deque()).append(request)
        if self.cache.access(item):
            if demand:
                self.stats.hits += 1
                if self._origin.get(item) == "prefetch":
                    self.stats.prefetches_used += 1
                    self._origin[item] = "prefetch-used"
            request.ready = True
            self._release(flow, now)
        else:
            if demand:
                self.stats.misses += 1
            pending = self._pending.get(item)
            if pending is not None:
                pending.waiters.append(request)
                if demand:
                    self.stats.coalesced_waits += 1
                    if pending.speculative:
                        self.stats.prefetch_waits += 1
            else:
                if demand:
                    self.stats.upstream_demand_fetches += 1
                self._fetch_upstream(item, now, kind, [request])
        if demand and self.speculative:
            self._speculate(now)

    def backlog(self, flow, now: float) -> float:
        """This flow's queued work as seen at ``now`` — released delivery
        backlog plus the durations of transfers still gated on upstream
        fetches.  Optimistic (the upstream wait itself is excluded), in the
        spirit of :meth:`ServerUplink.backlog` under contention."""
        if self.transparent:
            return self.parent.backlog(flow, now)
        gated = sum(r.duration for r in self._flows.get(flow, ()))
        return self.delivery.backlog(flow, now) + gated

    def _release(self, flow, now: float) -> None:
        """Hand ready head-of-flow transfers to the delivery uplink, in order."""
        queue = self._flows.get(flow)
        if queue is None:
            return
        while queue and queue[0].ready:
            r = queue.popleft()
            self.delivery.submit(
                r.flow, r.item, r.duration, now, r.on_complete,
                kind=r.kind, on_grant=r.on_grant,
            )
        if not queue:
            del self._flows[flow]

    # -- miss propagation ------------------------------------------------
    def _fetch_upstream(
        self,
        item: int,
        now: float,
        kind: str,
        waiters: list[_ChildRequest],
        *,
        speculative: bool = False,
    ) -> None:
        self._pending[item] = _PendingFetch(
            kind=kind, speculative=speculative, waiters=list(waiters)
        )
        stream = (self.name, self._next_stream)
        self._next_stream = (self._next_stream + 1) % self.uplink_streams
        duration = self.link_up.transfer_time(self.server.size(item))
        self.parent.submit(
            stream,
            item,
            duration,
            now,
            lambda completion, it=item: self._fetched(it, completion),
            kind=kind,
        )

    def _fetched(self, item: int, completion: float) -> None:
        entry = self._pending.pop(item)
        if entry.speculative:
            self._in_flight_prefetches -= 1
        victim = self.cache.insert(item)
        if victim is not None:
            self._origin.pop(victim, None)
        self._origin[item] = "prefetch" if entry.speculative else "demand"
        if entry.speculative and any(w.kind == "demand" for w in entry.waiters):
            self.stats.prefetches_used += 1
            self._origin[item] = "prefetch-used"
        for w in entry.waiters:
            w.ready = True
        for w in entry.waiters:
            self._release(w.flow, completion)

    # -- proxy-side speculation -------------------------------------------
    def _speculate(self, now: float) -> None:
        budget = self.prefetch_budget - self._in_flight_prefetches
        if budget <= 0:
            return
        p = np.asarray(self.predictor.predict(), dtype=np.float64)
        total = float(p.sum())
        if total <= 0.0:
            return
        if total > 1.0:  # guard against float drift in normalised rows
            p = p / total
        # Blocking zero-probability items keeps the solver instance at the
        # predictor's support size (a Markov row, not the whole catalog).
        blocked = set(np.flatnonzero(p <= 0.0).tolist()) | set(self._pending)
        blocked.update(self.cache.items)
        if len(blocked) >= p.shape[0]:
            return
        # Predictor rows are library-normalised (and clamped above), so the
        # per-call re-validation is skipped; candidate_plan re-sets its
        # blocked argument, making the former sorted() call pure overhead.
        problem = PrefetchProblem.from_validated(p, self.retrievals_up, self.prefetch_window)
        plan = self.planner.candidate_plan(problem, cache=blocked)
        for target in plan.items[:budget]:
            self.stats.prefetches_issued += 1
            self._in_flight_prefetches += 1
            self._fetch_upstream(target, now, "prefetch", [], speculative=True)


# ---------------------------------------------------------------------------
# Topology registry
# ---------------------------------------------------------------------------

#: name -> builder(network, seed) returning (tiers, attach, edge_of_client):
#: ``tiers`` is a bottom-up list of (tier name, [ProxyNode…]); ``attach``
#: maps each client index to its attachment node; ``edge_of_client`` maps
#: each client index to its edge-proxy index (for per-edge demand analysis).
TOPOLOGIES: dict[str, Callable] = {}


def register_topology(name: str):
    """Register a topology builder under ``name`` (decorator)."""

    def decorator(builder):
        if name in TOPOLOGIES:
            raise ValueError(f"topology {name!r} already registered")
        TOPOLOGIES[name] = builder
        return builder

    return decorator


def topology_names() -> tuple[str, ...]:
    return tuple(sorted(TOPOLOGIES))


@register_topology("star")
def _build_star(network: "CacheNetwork", seed: int):
    """PR 2 degenerate case: one pass-through proxy relaying every client
    verbatim to the origin uplink (edge-tier knobs are ignored)."""
    cfg = network.config
    proxy = ProxyNode(
        "edge0",
        network.queue,
        network.origin,
        network.server,
        Link(latency=cfg.edge_latency, bandwidth=cfg.edge_bandwidth),
    )
    n = network.population.n_clients
    return [("edge", [proxy])], [proxy] * n, [0] * n


def _edge_tier(network: "CacheNetwork", parent, seed: int) -> list[ProxyNode]:
    cfg = network.config
    link = Link(latency=cfg.edge_latency, bandwidth=cfg.edge_bandwidth)
    speculative = cfg.placement in ("edge", "both")
    proxies = []
    for k in range(cfg.n_edges):
        cache = _build_cache(
            cfg.edge_cache, cfg.edge_cache_size, network.population.sizes, link,
            derive_seed(seed, tier="edge", proxy=k),
        )
        predictor = None
        if speculative and cache is not None and cfg.edge_prefetch_budget > 0:
            predictor = _build_predictor(cfg.edge_predictor, network.server.n_items)
        proxies.append(
            ProxyNode(
                f"edge{k}",
                network.queue,
                parent,
                network.server,
                link,
                cache=cache,
                predictor=predictor,
                strategy=cfg.edge_strategy,
                skp_variant=cfg.skp_variant,
                prefetch_budget=cfg.edge_prefetch_budget,
                prefetch_window=cfg.edge_prefetch_window,
                delivery_concurrency=cfg.edge_delivery_concurrency,
                discipline=cfg.discipline,
                uplink_streams=cfg.edge_uplink_streams,
            )
        )
    return proxies


def _assign_round_robin(n_clients: int, proxies: list[ProxyNode]):
    attach = [proxies[i % len(proxies)] for i in range(n_clients)]
    edge_of_client = [i % len(proxies) for i in range(n_clients)]
    return attach, edge_of_client


@register_topology("tree")
def _build_tree(network: "CacheNetwork", seed: int):
    """Clients → regional edge proxies → origin (round-robin attachment)."""
    edges = _edge_tier(network, network.origin, seed)
    attach, edge_of_client = _assign_round_robin(network.population.n_clients, edges)
    return [("edge", edges)], attach, edge_of_client


@register_topology("two-tier")
def _build_two_tier(network: "CacheNetwork", seed: int):
    """Clients → edge proxies → one mid-tier proxy (cache only) → origin."""
    cfg = network.config
    mid_link = Link(latency=cfg.mid_latency, bandwidth=cfg.mid_bandwidth)
    mid = ProxyNode(
        "mid0",
        network.queue,
        network.origin,
        network.server,
        mid_link,
        cache=_build_cache(
            cfg.mid_cache, cfg.mid_cache_size, network.population.sizes, mid_link,
            derive_seed(seed, tier="mid", proxy=0),
        ),
        discipline=cfg.discipline,
        uplink_streams=cfg.mid_uplink_streams,
    )
    edges = _edge_tier(network, mid, seed)
    attach, edge_of_client = _assign_round_robin(network.population.n_clients, edges)
    return [("edge", edges), ("mid", [mid])], attach, edge_of_client


def _build_cache(policy: str, capacity: int, sizes, link: Link, seed: int) -> Cache | None:
    # Lazy import keeps distsys below experiments in the layering.
    from repro.experiments.registry import build_server_cache

    return build_server_cache(
        policy, capacity, sizes, latency=link.latency, bandwidth=link.bandwidth, seed=seed
    )


def _build_predictor(name: str, n_items: int) -> AccessPredictor:
    from repro.experiments.registry import PREDICTORS

    return PREDICTORS.create(name, n_items)


# ---------------------------------------------------------------------------
# The network
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TierSummary:
    """Aggregated demand-path accounting of one proxy tier.

    ``caching`` is False for a tier built entirely of pass-through proxies
    (no shared cache anywhere), in which case the demand counters are all
    zero and ``hit_rate`` is NaN.
    """

    tier: str
    n_proxies: int
    caching: bool
    requests: int
    hits: int
    misses: int
    coalesced_waits: int
    upstream_demand_fetches: int
    prefetches_issued: int
    prefetches_used: int
    prefetch_waits: int
    evictions: int
    per_proxy_hit_rate: tuple[float, ...]

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else float("nan")

    @property
    def prefetch_precision(self) -> float:
        if self.prefetches_issued == 0:
            return float("nan")
        return self.prefetches_used / self.prefetches_issued


@dataclass(frozen=True)
class TopologyResult:
    """Outcome of one hierarchy run: client stats, per-tier stats, origin load."""

    config: TopologyConfig
    client_stats: tuple[AccessStats, ...]
    aggregate: FleetAggregate
    tiers: tuple[TierSummary, ...]  # bottom-up: edge, then mid (if any)
    edge_of_client: tuple[int, ...]  # client index -> edge proxy index
    makespan: float
    events: int
    offered_load: float
    origin_utilization: float
    prefetch_load_frac: float
    server_cache_hit_rate: float
    transfers_granted: int

    @property
    def n_clients(self) -> int:
        return len(self.client_stats)

    @property
    def mean_access_time(self) -> float:
        return self.aggregate.mean_access_time

    def tier(self, name: str) -> TierSummary:
        for summary in self.tiers:
            if summary.tier == name:
                return summary
        raise KeyError(f"no tier named {name!r}; have {[t.tier for t in self.tiers]}")

    @property
    def edge_hit_rate(self) -> float:
        """Demand hit ratio of the edge tier (NaN for pass-through edges)."""
        return self.tiers[0].hit_rate if self.tiers else float("nan")


class CacheNetwork:
    """Wire a :class:`Population` through a proxy hierarchy and run it.

    The origin is exactly the fleet's: an :class:`ItemServer` (optional
    shared cache + ``miss_penalty``) behind a :class:`ServerUplink`
    (``concurrency`` / ``discipline``).  The selected topology builder
    interposes proxy tiers and assigns each client an attachment node;
    clients are unmodified :class:`~repro.distsys.fleet.FleetClient`\\ s —
    the hierarchy is invisible to them behind the uplink interface.
    """

    def __init__(
        self,
        population: Population,
        config: TopologyConfig = TopologyConfig(),
        *,
        server_cache: Cache | None = None,
        seed: int = 0,
    ) -> None:
        self.population = population
        self.config = config
        self.queue = EventQueue()
        self.server = ItemServer(
            population.sizes, cache=server_cache, miss_penalty=config.miss_penalty
        )
        self.access_link = Link(latency=config.latency, bandwidth=config.bandwidth)
        self.origin = ServerUplink(
            self.queue,
            self.server,
            concurrency=config.concurrency,
            discipline=config.discipline,
        )
        self.tiers, attach, self.edge_of_client = TOPOLOGIES[config.topology](self, seed)
        client_strategy = (
            config.strategy if config.placement in ("client", "both") else "none"
        )
        prefetcher = Prefetcher(
            strategy=client_strategy,
            variant=config.skp_variant,
            sub_arbitration=config.sub_arbitration,
            # Same guard as the fleet: learned online rows may carry tied
            # probabilities that defeat bound pruning (see core.planner).
            node_budget=ONLINE_NODE_BUDGET if config.model_source == "online" else None,
        )
        self.clients = [
            FleetClient(
                workload,
                self.server,
                self.access_link,
                attach[i],
                self.queue,
                prefetcher,
                cache_capacity=config.cache_capacity,
                planning_window=config.planning_window,
                model=build_client_model(config, self.server.n_items),
            )
            for i, workload in enumerate(population.clients)
        ]

    def proxies(self, tier: str) -> list[ProxyNode]:
        for name, nodes in self.tiers:
            if name == tier:
                return nodes
        raise KeyError(f"no tier named {tier!r}")

    def run(self) -> TopologyResult:
        accounting = run_to_quiescence(self.queue, self.clients, self.origin, self.server)
        return TopologyResult(
            config=self.config,
            client_stats=tuple(c.stats for c in self.clients),
            aggregate=aggregate_access_stats([c.stats for c in self.clients]),
            tiers=tuple(self._summarise(name, nodes) for name, nodes in self.tiers),
            edge_of_client=tuple(self.edge_of_client),
            makespan=accounting.makespan,
            events=accounting.events,
            offered_load=accounting.offered_load,
            origin_utilization=accounting.utilization,
            prefetch_load_frac=accounting.prefetch_load_frac,
            server_cache_hit_rate=accounting.server_cache_hit_rate,
            transfers_granted=accounting.granted,
        )

    @staticmethod
    def _summarise(name: str, nodes: list[ProxyNode]) -> TierSummary:
        stats = [node.stats for node in nodes]
        return TierSummary(
            tier=name,
            n_proxies=len(nodes),
            caching=any(node.cache is not None for node in nodes),
            requests=sum(s.requests for s in stats),
            hits=sum(s.hits for s in stats),
            misses=sum(s.misses for s in stats),
            coalesced_waits=sum(s.coalesced_waits for s in stats),
            upstream_demand_fetches=sum(s.upstream_demand_fetches for s in stats),
            prefetches_issued=sum(s.prefetches_issued for s in stats),
            prefetches_used=sum(s.prefetches_used for s in stats),
            prefetch_waits=sum(s.prefetch_waits for s in stats),
            evictions=sum(
                node.cache.stats.evictions for node in nodes if node.cache is not None
            ),
            per_proxy_hit_rate=tuple(s.hit_rate for s in stats),
        )


def run_topology(
    population: Population,
    config: TopologyConfig = TopologyConfig(),
    *,
    server_cache: Cache | None = None,
    seed: int = 0,
) -> TopologyResult:
    """Build and run a cache hierarchy in one call.

    ``seed`` feeds per-proxy cache seeds through
    :func:`repro.util.rng.derive_seed` (tier + proxy index only), so results
    are independent of construction or worker order.
    """
    return CacheNetwork(population, config, server_cache=server_cache, seed=seed).run()
