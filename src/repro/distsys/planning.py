"""Shared per-client planning state: cache, origin, pending, planner calls.

Before this module, the demand-victim/cache-admission block and the
viewing-period planning call were copy-pasted three times — in the lean §5.3
simulator (:mod:`repro.simulation.prefetch_cache`), the event-driven client
(:mod:`repro.distsys.client`) and the fleet client
(:mod:`repro.distsys.fleet`, reused by :mod:`repro.distsys.topology`).  The
three engines must stay *bit-exact* with each other (see
``tests/integration/test_cross_engine.py``), so the shared arithmetic now
lives here once.

:class:`ClientPlanState` is also where the fast-kernel bookkeeping lives:

* the cache and pending sets are mirrored into **incrementally maintained
  sorted tuples** (invalidated on membership change, rebuilt lazily), so the
  per-request ``sorted(cache)`` / ``sorted(pending)`` calls of the old hot
  loops disappear;
* planner problems are built through
  :meth:`~repro.core.types.PrefetchProblem.from_validated` when the
  probability provider is *trusted* (library-constructed workloads whose
  rows were validated at generation time), skipping the per-request
  re-validation of the same arrays;
* demand-victim solves are **memoized** on ``(item, cache fingerprint)``
  when the provider is static and no frequency-dependent sub-arbitration is
  configured — the zero-window victim problem is a pure function of those
  two inputs, and fleets revisit the same hot cache states constantly.

Every path folds the identical floats in the identical order as the
unshared originals; the golden-trace tests pin that down.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.core.planner import PlanOutcome, Prefetcher
from repro.core.types import PrefetchProblem

__all__ = ["ClientPlanState"]

_MISS = object()  # memo sentinel (victims may legitimately be None)


class ClientPlanState:
    """Cache/pending/frequency bookkeeping plus planner dispatch for one client.

    The engines keep direct references to :attr:`cache`, :attr:`origin` and
    :attr:`pending` (tests inspect them), but all *membership* mutations must
    go through the methods here so the sorted fingerprints stay coherent.
    Updating a pending item's value (e.g. recording a grant's completion
    time) is membership-neutral and may write ``state.pending[item]``
    directly.
    """

    __slots__ = (
        "prefetcher",
        "provider",
        "retrievals",
        "capacity",
        "cache",
        "origin",
        "pending",
        "frequencies",
        "model",
        "_trusted",
        "_cache_tuple",
        "_pending_tuple",
        "_victim_memo",
        "_support_cache",
    )

    def __init__(
        self,
        prefetcher: Prefetcher,
        provider: Callable[[int], np.ndarray],
        retrievals: np.ndarray,
        capacity: int,
        n_items: int,
        *,
        trusted_provider: bool = False,
        static_provider: bool = False,
        model=None,
    ) -> None:
        if capacity < 0:
            raise ValueError("cache_capacity must be non-negative")
        if model is not None and static_provider:
            raise ValueError(
                "an online model's rows change per observation; "
                "static_provider must be False"
            )
        self.prefetcher = prefetcher
        self.provider = provider
        #: Optional online access model (:class:`repro.prediction.base
        #: .AccessPredictor`).  When set, :meth:`observe` feeds it the
        #: served-request stream — the ``model_source="online"`` path where
        #: planning rows are *learned* instead of handed down by the oracle.
        self.model = model
        self.retrievals = np.ascontiguousarray(retrievals, dtype=np.float64)
        self.capacity = int(capacity)
        self.cache: set[int] = set()
        self.origin: dict[int, str] = {}
        self.pending: dict[int, float | None] = {}
        self.frequencies = np.zeros(int(n_items), dtype=np.float64)
        self._trusted = bool(trusted_provider)
        self._cache_tuple: tuple[int, ...] | None = ()
        self._pending_tuple: tuple[int, ...] | None = ()
        # The victim memo is sound only when provider rows never change and
        # the victim choice ignores the (ever-changing) access frequencies.
        self._victim_memo: dict | None = (
            {} if static_provider and prefetcher.sub_arbitration is None else None
        )
        # Per-item row support (flatnonzero), reusable only when rows never
        # change; the planner rescans the row itself otherwise.
        self._support_cache: dict[int, list[int]] | None = (
            {} if static_provider else None
        )

    # -- fingerprints ---------------------------------------------------
    def cache_key(self) -> tuple[int, ...]:
        """Sorted cache content; rebuilt only after a membership change."""
        key = self._cache_tuple
        if key is None:
            key = self._cache_tuple = tuple(sorted(self.cache))
        return key

    def pending_key(self) -> tuple[int, ...]:
        key = self._pending_tuple
        if key is None:
            key = self._pending_tuple = tuple(sorted(self.pending))
        return key

    # -- membership mutations -------------------------------------------
    def cache_add(self, item: int, origin: str) -> None:
        self.cache.add(item)
        self.origin[item] = origin
        self._cache_tuple = None

    def cache_discard(self, item: int) -> None:
        self.cache.discard(item)
        self.origin.pop(item, None)
        self._cache_tuple = None

    def pending_add(self, item: int, value: float | None) -> None:
        self.pending[item] = value
        self._pending_tuple = None

    def pending_pop(self, item: int) -> float | None:
        value = self.pending.pop(item)
        self._pending_tuple = None
        return value

    def promote(self, item: int) -> None:
        """Move a landed transfer from pending into the cache."""
        del self.pending[item]
        self._pending_tuple = None
        self.cache.add(item)
        self.origin[item] = "prefetch"
        self._cache_tuple = None

    # -- observation -----------------------------------------------------
    def observe(self, item: int) -> None:
        """Record one served access: LFU/DS frequencies plus the online model.

        The engines call this exactly where they used to bump
        ``frequencies`` directly, so the oracle path folds the identical
        float in the identical place and the online model sees the served
        stream in request order.
        """
        self.frequencies[item] += 1.0
        if self.model is not None:
            self.model.update(item)

    # -- planner dispatch -----------------------------------------------
    def problem(
        self, item: int, window: float, row: np.ndarray | None = None
    ) -> PrefetchProblem:
        """The planning instance for ``item``'s viewing period.

        ``row`` lets a caller that already fetched the provider row (e.g. to
        compute its support) reuse it; the trusted/untrusted construction
        dispatch lives only here.
        """
        if row is None:
            row = self.provider(item)
        if self._trusted:
            return PrefetchProblem.from_validated(row, self.retrievals, window)
        return PrefetchProblem(row, self.retrievals, window)

    #: Victim-memo size bound: past this many distinct (item, cache-state)
    #: pairs the memo is cleared and refills with the currently-hot states,
    #: keeping a workload that never revisits states at constant memory.
    _VICTIM_MEMO_LIMIT = 4096

    def demand_victim(self, item: int) -> int | None:
        """Victim for a demand-fetched item (§5.2's always-admitted case)."""
        memo = self._victim_memo
        if memo is not None:
            key = (item, self.cache_key())
            victim = memo.get(key, _MISS)
            if victim is not _MISS:
                return victim
        victim = self.prefetcher.demand_victim(
            self.problem(item, 0.0),
            item,
            self.cache_key(),
            cache_capacity=self.capacity,
            frequencies=self.frequencies,
        )
        if memo is not None:
            if len(memo) >= self._VICTIM_MEMO_LIMIT:
                memo.clear()
            memo[key] = victim
        return victim

    def admit_demand(self, item: int) -> None:
        """Admit a demand-fetched item, evicting a victim from a full cache.

        The §5.2 block the three engines used to duplicate: with zero
        capacity nothing is stored; a full cache asks the planner for a
        victim *before* insertion (eviction lists leave the cache at
        planning time); the item is then recorded with demand origin.
        """
        if self.capacity <= 0:
            return
        if len(self.cache) >= self.capacity:
            victim = self.demand_victim(item)
            if victim is not None:
                self.cache_discard(victim)
        self.cache_add(item, "demand")

    def plan_view(self, item: int, window: float) -> PlanOutcome:
        """Plan one viewing period and apply the eviction list.

        Returns the outcome; scheduling the admitted prefetches (channel
        arithmetic vs. uplink submission) stays engine-specific, but every
        engine must register them via :meth:`pending_add`.
        """
        row = self.provider(item)
        problem = self.problem(item, window, row)
        support = None
        if self._support_cache is not None:
            support = self._support_cache.get(item)
            if support is None:
                support = self._support_cache[item] = np.flatnonzero(row).tolist()
        outcome = self.prefetcher.plan(
            problem,
            cache=self.cache_key(),
            cache_capacity=self.capacity - len(self.pending),
            frequencies=self.frequencies,
            pinned=self.pending_key(),
            support=support,
        )
        for victim in outcome.eject:
            self.cache_discard(victim)
        return outcome
