"""Distributed-information-system substrate (event-driven).

* :mod:`repro.distsys.events` — discrete-event queue;
* :mod:`repro.distsys.network` — latency/bandwidth link, the non-preemptive
  per-client transfer channel (the §2 assumption in mechanism form), and the
  fleet's shared finite-concurrency server uplink;
* :mod:`repro.distsys.server` — sized item catalog, optionally fronted by a
  shared server-side cache;
* :mod:`repro.distsys.client` — cache + planner + channel client;
* :mod:`repro.distsys.session` — trace replay driver (one client);
* :mod:`repro.distsys.fleet` — N clients, one contended uplink, population
  workloads, fleet-level metrics;
* :mod:`repro.distsys.topology` — multi-tier cache hierarchies: proxy nodes
  with shared caches and per-tier speculation, star/tree/two-tier
  topologies, miss propagation toward the origin.
"""

from repro.distsys.events import EventQueue
from repro.distsys.network import Channel, Link, ServerUplink
from repro.distsys.server import ItemServer
from repro.distsys.client import Client, ClientStats
from repro.distsys.session import SessionResult, predictor_provider, run_session
from repro.distsys.fleet import Fleet, FleetClient, FleetConfig, FleetResult, run_fleet
from repro.distsys.megafleet import (
    CohortFleet,
    CohortFleetResult,
    HybridFleetResult,
    run_cohort_fleet,
    run_hybrid_fleet,
)
from repro.distsys.topology import (
    TOPOLOGIES,
    CacheNetwork,
    ProxyNode,
    ProxyStats,
    TierSummary,
    TopologyConfig,
    TopologyResult,
    register_topology,
    run_topology,
    topology_names,
)

__all__ = [
    "EventQueue",
    "Channel",
    "Link",
    "ServerUplink",
    "ItemServer",
    "Client",
    "ClientStats",
    "SessionResult",
    "predictor_provider",
    "run_session",
    "Fleet",
    "FleetClient",
    "FleetConfig",
    "FleetResult",
    "run_fleet",
    "CohortFleet",
    "CohortFleetResult",
    "HybridFleetResult",
    "run_cohort_fleet",
    "run_hybrid_fleet",
    "TOPOLOGIES",
    "CacheNetwork",
    "ProxyNode",
    "ProxyStats",
    "TierSummary",
    "TopologyConfig",
    "TopologyResult",
    "register_topology",
    "run_topology",
    "topology_names",
]
