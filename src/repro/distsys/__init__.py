"""Distributed-information-system substrate (event-driven).

* :mod:`repro.distsys.events` — discrete-event queue;
* :mod:`repro.distsys.network` — latency/bandwidth link and the
  non-preemptive transfer channel (the §2 assumption in mechanism form);
* :mod:`repro.distsys.server` — sized item catalog;
* :mod:`repro.distsys.client` — cache + planner + channel client;
* :mod:`repro.distsys.session` — trace replay driver.
"""

from repro.distsys.events import EventQueue
from repro.distsys.network import Channel, Link
from repro.distsys.server import ItemServer
from repro.distsys.client import Client, ClientStats
from repro.distsys.session import SessionResult, predictor_provider, run_session

__all__ = [
    "EventQueue",
    "Channel",
    "Link",
    "ItemServer",
    "Client",
    "ClientStats",
    "SessionResult",
    "predictor_provider",
    "run_session",
]
