"""Fleet simulator: N prefetching clients contending for one server uplink.

The single-client engines answer "does speculation pay off over a private
link?".  The fleet answers the production question: what happens when every
client's prefetch traffic competes with every other client's *demand*
traffic for the same server egress.  N event-driven clients share one
:class:`~repro.distsys.events.EventQueue`, one
:class:`~repro.distsys.server.ItemServer` (optionally fronted by a shared
server-side cache) and one :class:`~repro.distsys.network.ServerUplink`
with finite concurrency and FIFO or fair cross-client scheduling — so
prefetch intrusion becomes a cross-client effect, not just a per-client
stretch.

Each :class:`FleetClient` implements exactly the semantics of
:class:`~repro.distsys.client.Client` (transfers never aborted, demand
fetches wait for the client's whole backlog, eviction lists leave the cache
at planning time, each admitted prefetch paired with a victim or free
slot), but fully event-driven: completion times emerge from the shared
timeline instead of being computed at enqueue.  A 1-client fleet over an
unbounded uplink reproduces the single-client engine's access times
*bit-exactly* (see ``tests/integration/test_cross_engine.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cache.base import Cache
from repro.core.planner import ONLINE_NODE_BUDGET, Prefetcher
from repro.distsys.events import EventQueue
from repro.distsys.network import Link, ServerUplink
from repro.distsys.planning import ClientPlanState
from repro.distsys.server import ItemServer
from repro.simulation.metrics import AccessStats, FleetAggregate, aggregate_access_stats
from repro.workload.population import ClientWorkload, Population

__all__ = [
    "FleetConfig",
    "FleetClient",
    "Fleet",
    "FleetResult",
    "UplinkAccounting",
    "build_client_model",
    "run_fleet",
    "run_to_quiescence",
]


@dataclass(frozen=True)
class FleetConfig:
    """Shared knobs of one fleet run (per-client workloads live in the
    :class:`~repro.workload.population.Population`)."""

    cache_capacity: int = 8
    strategy: str = "skp"  # "none" | "kp" | "skp"
    sub_arbitration: str | None = None  # None | "lfu" | "ds"
    skp_variant: str = "corrected"
    planning_window: str = "nominal"  # "nominal" | "effective"
    concurrency: int | None = 4  # uplink slots; None = unbounded
    discipline: str = "fifo"  # "fifo" | "fair"
    latency: float = 0.0
    bandwidth: float = 1.0
    miss_penalty: float = 0.0  # server-cache miss service penalty
    #: Where planning rows come from: "oracle" hands every client its
    #: workload's (t=0) probability provider — the paper's presupposed
    #: model; "online" gives each client a private adaptive predictor
    #: (``online_predictor`` names a :data:`repro.experiments.registry
    #: .PREDICTORS` entry) that learns from the served request stream.
    model_source: str = "oracle"
    online_predictor: str = "markov:ewma"
    #: Which kernel advances the fleet: "event" is the exact shared-heap
    #: engine; "cohort" the vectorized struct-of-arrays kernel with
    #: cohort-level plan memoization (:mod:`repro.distsys.megafleet` —
    #: bit-exact over an unbounded uplink, mean-field under contention);
    #: "hybrid" simulates ``hybrid_sample`` real clients through the event
    #: engine and closes the rest analytically (Che + M/G/c fixed point).
    engine: str = "event"
    hybrid_sample: int = 64  # simulated sample size of the hybrid engine

    def __post_init__(self) -> None:
        if self.cache_capacity < 0:
            raise ValueError("cache_capacity must be non-negative")
        if self.planning_window not in ("nominal", "effective"):
            raise ValueError(f"unknown planning_window {self.planning_window!r}")
        if self.model_source not in ("oracle", "online"):
            raise ValueError(
                f"model_source must be 'oracle' or 'online', got {self.model_source!r}"
            )
        if self.engine not in ("event", "cohort", "hybrid"):
            raise ValueError(
                f"engine must be 'event', 'cohort' or 'hybrid', got {self.engine!r}"
            )
        if self.hybrid_sample < 1:
            raise ValueError("hybrid_sample must be positive")


class FleetClient:
    """One event-driven prefetching client inside a fleet.

    The request/serve/plan cycle is driven entirely by scheduled events:
    ``start()`` seeds the warm-start item at the client's (possibly
    staggered) start time; every served request plans prefetches for its
    viewing period and schedules the next request; transfer completions
    arrive as uplink callbacks.

    Fleet workloads come from a :class:`Population`, whose probability
    providers are library-constructed and static — so the shared
    :class:`~repro.distsys.planning.ClientPlanState` runs with trusted
    (validate-once) problem construction and demand-victim memoization, and
    the per-request trace/duration lookups read precomputed Python lists.
    With an online ``model`` (``model_source="online"``) the rows are
    learned from the served stream instead: still trusted (predictors emit
    normalised rows), but the static-provider fast paths switch off.
    """

    __slots__ = (
        "client_id",
        "workload",
        "server",
        "link",
        "uplink",
        "queue",
        "prefetcher",
        "capacity",
        "planning_window",
        "retrievals",
        "provider",
        "state",
        "stats",
        "finished_at",
        "_k",
        "_waiting",
        "_items",
        "_viewings",
        "_transfer",
        "_n_requests",
    )

    def __init__(
        self,
        workload: ClientWorkload,
        server: ItemServer,
        link: Link,
        uplink: ServerUplink,
        queue: EventQueue,
        prefetcher: Prefetcher,
        *,
        cache_capacity: int,
        planning_window: str = "nominal",
        model=None,
    ) -> None:
        if planning_window not in ("nominal", "effective"):
            raise ValueError(f"unknown planning_window {planning_window!r}")
        if cache_capacity < 0:
            raise ValueError("cache_capacity must be non-negative")
        self.client_id = int(workload.client_id)
        self.workload = workload
        self.server = server
        self.link = link
        self.uplink = uplink
        self.queue = queue
        self.prefetcher = prefetcher
        self.capacity = int(cache_capacity)
        self.planning_window = planning_window
        self.retrievals = server.retrieval_times(link)
        # ``model`` switches the client from the oracle row to an online
        # predictor (any AccessPredictor): rows are library-normalised
        # (trusted) but change with every observation, so the static-provider
        # fast paths (victim memo, support cache) must stay off.
        if model is not None:
            self.provider = model.conditional_row
        else:
            self.provider = workload.provider()

        self.state = ClientPlanState(
            prefetcher,
            self.provider,
            self.retrievals,
            self.capacity,
            server.n_items,
            trusted_provider=True,
            static_provider=model is None,
            model=model,
        )
        self.stats = AccessStats()
        self.finished_at: float | None = None

        self._k = 0  # next trace index
        self._waiting: tuple[int, int, float] | None = None  # (index, item, t_req)
        # Batch the per-request numpy scalar reads into plain lists up front:
        # trace items, viewing times, and per-item transfer durations (the
        # same latency + size/bandwidth floats link.transfer_time derives).
        self._items = [int(i) for i in workload.trace.items]
        self._viewings = workload.trace.viewing_times.tolist()
        self._transfer = self.retrievals.tolist()
        self._n_requests = len(self._items)

    # -- state views (tests and the planner share these) ----------------
    @property
    def cache(self) -> set[int]:
        return self.state.cache

    @property
    def origin(self) -> dict[int, str]:
        return self.state.origin

    @property
    def pending(self) -> dict[int, float | None]:
        return self.state.pending

    @property
    def frequencies(self) -> np.ndarray:
        return self.state.frequencies

    # -- lifecycle -----------------------------------------------------
    def start(self) -> None:
        self.queue.schedule(self.workload.start_time, self._begin)

    @property
    def done(self) -> bool:
        return self.finished_at is not None

    def _begin(self) -> None:
        """Warm start: pre-serve the initial item, plan, queue request 0."""
        now = self.queue.now
        item = int(self.workload.initial_item)
        self.state.observe(item)
        if self.capacity > 0:
            self.state.cache_add(item, "demand")
        viewing = float(self.workload.initial_viewing_time)
        self._view(item, viewing, now)
        self._schedule_request(now + viewing)

    def _schedule_request(self, at: float) -> None:
        if self._k < self._n_requests:
            self.queue.schedule(at, self._request)
        else:
            self.finished_at = at

    # -- request handling ----------------------------------------------
    def _request(self) -> None:
        now = self.queue.now
        k = self._k
        item = self._items[k]
        state = self.state
        self._promote_ready(now)

        if item in state.cache:
            self.stats.cache_hits += 1
            if state.origin.get(item) == "prefetch":
                self.stats.prefetches_used += 1
                state.origin[item] = "prefetch-used"
            self._serve(k, item, now, now, AccessStats.KIND_HIT)
        elif item in state.pending:
            self._waiting = (k, item, now)  # served by the transfer's arrival
        else:
            duration = self._transfer[item]
            self.stats.network_demand_time += duration
            self.stats.misses += 1
            self.uplink.submit(
                self.client_id,
                item,
                duration,
                now,
                lambda completion, k=k, item=item, t_req=now: self._demand_done(
                    k, item, t_req, completion
                ),
                kind="demand",
            )

    def _demand_done(self, k: int, item: int, t_req: float, completion: float) -> None:
        # Per-client FIFO means the whole backlog drained before this demand
        # started (§2: prefetches are never aborted); promote any stragglers.
        self._promote_ready(completion)
        self.state.admit_demand(item)
        self._serve(k, item, t_req, completion, AccessStats.KIND_MISS)

    # -- prefetch arrivals ---------------------------------------------
    def _granted(self, item: int, completion: float) -> None:
        pending = self.state.pending
        if item in pending:
            pending[item] = completion  # membership unchanged: direct write

    def _promote_ready(self, now: float) -> None:
        """Promote granted prefetches that have landed by ``now``.

        Mirrors the lean engine's ``promote(t_req)``: a transfer completing
        at exactly the request instant counts as a cache hit even if its
        completion event is ordered after the request event.
        """
        state = self.state
        done = [
            item
            for item, arrival in state.pending.items()
            if arrival is not None and arrival <= now
        ]
        for item in done:
            state.promote(item)

    def _prefetch_done(self, item: int, completion: float) -> None:
        state = self.state
        if item in state.pending:
            state.promote(item)
        if self._waiting is not None and self._waiting[1] == item:
            k, _, t_req = self._waiting
            self._waiting = None
            self.stats.pending_waits += 1
            self.stats.prefetches_used += 1
            state.origin[item] = "prefetch-used"
            self._serve(k, item, t_req, completion, AccessStats.KIND_WAIT)

    # -- serve + plan ----------------------------------------------------
    def _serve(self, k: int, item: int, t_req: float, t_serve: float, kind: int) -> None:
        self.stats.access_times.append(t_serve - t_req)
        self.stats.request_times.append(t_req)
        self.stats.serve_kinds.append(kind)
        self.state.observe(item)
        viewing = self._viewings[k]
        self._k = k + 1
        self._view(item, viewing, now=t_serve)
        self._schedule_request(t_serve + viewing)

    def _view(self, item: int, viewing_time: float, now: float) -> None:
        """Plan and submit prefetches for the viewing period after ``item``."""
        window = float(viewing_time)
        if self.planning_window == "effective":
            window = max(0.0, window - self.uplink.backlog(self.client_id, now))
        state = self.state
        outcome = state.plan_view(item, window)
        for f in outcome.prefetch:
            duration = self._transfer[f]
            state.pending_add(f, None)
            self.stats.prefetches_scheduled += 1
            self.stats.network_prefetch_time += duration
            self.uplink.submit(
                self.client_id,
                f,
                duration,
                now,
                lambda completion, it=f: self._prefetch_done(it, completion),
                kind="prefetch",
                on_grant=self._granted,
            )
        assert len(state.cache) + len(state.pending) <= max(self.capacity, 0)


@dataclass(frozen=True)
class UplinkAccounting:
    """What one run of an event-driven population measured at its bottleneck."""

    events: int
    makespan: float
    offered_load: float
    utilization: float
    prefetch_load_frac: float
    server_cache_hit_rate: float
    granted: int


def run_to_quiescence(queue, clients, uplink, server) -> UplinkAccounting:
    """Start every client, drain the queue, account the shared uplink.

    The one implementation behind :meth:`Fleet.run` and
    :meth:`repro.distsys.topology.CacheNetwork.run` — the star==fleet
    bit-exactness contract depends on the two engines folding identical
    accounting arithmetic.
    """
    for client in clients:
        client.start()
    events = queue.run()
    unfinished = [c.client_id for c in clients if not c.done]
    if unfinished:  # pragma: no cover - would indicate an engine bug
        raise RuntimeError(f"clients {unfinished} never finished their traces")
    makespan = max(queue.now, max(c.finished_at for c in clients))
    total_service = uplink.total_service_time
    offered = total_service / makespan if makespan > 0 else 0.0
    slots = uplink.concurrency
    cache = server.cache
    return UplinkAccounting(
        events=events,
        makespan=makespan,
        offered_load=offered,
        utilization=offered / slots if slots else float("nan"),
        prefetch_load_frac=(
            uplink.service_time_by_kind["prefetch"] / total_service
            if total_service
            else 0.0
        ),
        server_cache_hit_rate=cache.stats.hit_rate if cache is not None else float("nan"),
        granted=uplink.granted,
    )


@dataclass(frozen=True)
class FleetResult:
    """Outcome of one fleet run: per-client stats plus fleet-level metrics.

    ``offered_load`` is the mean number of concurrent transfers (Erlangs:
    total service time / makespan) and is always defined;
    ``server_utilization`` is the fraction of slot-time in use
    (``offered_load / concurrency``) and is NaN for an unbounded uplink,
    where there is no slot count to divide by.
    """

    config: FleetConfig
    client_stats: tuple[AccessStats, ...]
    aggregate: FleetAggregate
    makespan: float
    events: int
    offered_load: float
    server_utilization: float
    prefetch_load_frac: float
    server_cache_hit_rate: float
    transfers_granted: int

    @property
    def n_clients(self) -> int:
        return len(self.client_stats)

    @property
    def mean_access_time(self) -> float:
        return self.aggregate.mean_access_time


def build_client_model(config, n_items: int):
    """One fresh per-client online predictor, or None for the oracle path.

    Resolved by name in :data:`repro.experiments.registry.PREDICTORS`
    (lazy import — same layering concession :mod:`repro.distsys.topology`
    makes for its edge predictors).
    """
    if getattr(config, "model_source", "oracle") != "online":
        return None
    from repro.experiments.registry import PREDICTORS

    return PREDICTORS.create(str(config.online_predictor), int(n_items))


class Fleet:
    """Wire a :class:`Population` to one shared server and run it to quiescence."""

    def __init__(
        self,
        population: Population,
        config: FleetConfig = FleetConfig(),
        *,
        server_cache: Cache | None = None,
    ) -> None:
        self.population = population
        self.config = config
        self.queue = EventQueue()
        self.server = ItemServer(
            population.sizes, cache=server_cache, miss_penalty=config.miss_penalty
        )
        self.link = Link(latency=config.latency, bandwidth=config.bandwidth)
        self.uplink = ServerUplink(
            self.queue,
            self.server,
            concurrency=config.concurrency,
            discipline=config.discipline,
        )
        prefetcher = Prefetcher(
            strategy=config.strategy,
            variant=config.skp_variant,
            sub_arbitration=config.sub_arbitration,
            # Online rows are learned, so they can carry exactly tied
            # probabilities that defeat bound pruning; cap the solve.
            # Oracle rows keep the proven-optimal (bit-exact) search.
            node_budget=ONLINE_NODE_BUDGET if config.model_source == "online" else None,
        )
        self.clients = [
            FleetClient(
                workload,
                self.server,
                self.link,
                self.uplink,
                self.queue,
                prefetcher,
                cache_capacity=config.cache_capacity,
                planning_window=config.planning_window,
                model=build_client_model(config, self.server.n_items),
            )
            for workload in population.clients
        ]

    def run(self) -> FleetResult:
        accounting = run_to_quiescence(self.queue, self.clients, self.uplink, self.server)
        return FleetResult(
            config=self.config,
            client_stats=tuple(c.stats for c in self.clients),
            aggregate=aggregate_access_stats([c.stats for c in self.clients]),
            makespan=accounting.makespan,
            events=accounting.events,
            offered_load=accounting.offered_load,
            server_utilization=accounting.utilization,
            prefetch_load_frac=accounting.prefetch_load_frac,
            server_cache_hit_rate=accounting.server_cache_hit_rate,
            transfers_granted=accounting.granted,
        )


def run_fleet(
    population: Population,
    config: FleetConfig = FleetConfig(),
    *,
    server_cache: Cache | None = None,
) -> FleetResult:
    """Build and run a fleet in one call, dispatching on ``config.engine``.

    The hybrid path here models exactly ``population.n_clients`` clients
    from an already-materialised population (sampling via
    :func:`~repro.workload.population.subset_population`); to model a
    fleet far larger than what you can afford to build, call
    :func:`repro.distsys.megafleet.run_hybrid_fleet` directly with a
    ``client_ids``-aware population factory.
    """
    if config.engine == "cohort":
        from repro.distsys.megafleet import run_cohort_fleet

        return run_cohort_fleet(population, config, server_cache=server_cache)
    if config.engine == "hybrid":
        from repro.distsys.megafleet import run_hybrid_fleet
        from repro.workload.population import subset_population

        return run_hybrid_fleet(
            lambda ids: subset_population(population, ids),
            population.n_clients,
            config,
            server_cache_size=getattr(server_cache, "capacity", 0),
        )
    return Fleet(population, config, server_cache=server_cache).run()
