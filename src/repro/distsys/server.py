"""The information server: a catalog of sized items, optionally fronted by a
shared server-side cache.

Deliberately thin — the paper's server is just "where remote items live".
It owns item sizes (equal by default, per §5's assumption) and derives
retrieval times for a given link, so examples can explore non-uniform sizes
(the §6 future-work axis) without touching the client.

For the fleet, the server may carry a shared cache (any
:class:`repro.cache.base.Cache` policy, reused server-side): ``miss_penalty``
models the backing store behind the server, paid on every serve without a
cache and only on misses with one — so hot-set overlap across clients
becomes a measurable server-side effect.  The defaults (no cache, zero
penalty) preserve the single-client model exactly.
"""

from __future__ import annotations

import numpy as np

from repro.cache.base import Cache
from repro.distsys.network import Link

__all__ = ["ItemServer"]


class ItemServer:
    def __init__(
        self,
        sizes: np.ndarray,
        *,
        cache: Cache | None = None,
        miss_penalty: float = 0.0,
    ) -> None:
        sizes = np.asarray(sizes, dtype=np.float64)
        if sizes.ndim != 1 or sizes.shape[0] < 1:
            raise ValueError("sizes must be a non-empty 1-D array")
        if np.any(sizes <= 0) or not np.all(np.isfinite(sizes)):
            raise ValueError("sizes must be finite and positive")
        if miss_penalty < 0 or not np.isfinite(miss_penalty):
            raise ValueError("miss_penalty must be finite and non-negative")
        self.sizes = sizes
        self.cache = cache
        self.miss_penalty = float(miss_penalty)

    @classmethod
    def uniform(cls, n_items: int, size: float = 1.0) -> "ItemServer":
        """Equal-size catalog — the paper's §5 assumption."""
        return cls(np.full(int(n_items), float(size)))

    @property
    def n_items(self) -> int:
        return int(self.sizes.shape[0])

    def size(self, item: int) -> float:
        return float(self.sizes[int(item)])

    def retrieval_times(self, link: Link) -> np.ndarray:
        return link.retrieval_times(self.sizes)

    def serve(self, item: int) -> float:
        """Record a server-side access; returns the extra service time.

        ``miss_penalty`` models the backing store behind the server: with no
        cache every serve pays it; with a cache only misses do (the item is
        then admitted, evicting per the cache's policy).  The default
        penalty of zero preserves the single-client model exactly.
        """
        if self.cache is None:
            return self.miss_penalty
        item = int(item)
        if self.cache.access(item):
            return 0.0
        self.cache.insert(item)
        return self.miss_penalty
