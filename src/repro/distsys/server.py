"""The information server: a catalog of sized items.

Deliberately thin — the paper's server is just "where remote items live".
It owns item sizes (equal by default, per §5's assumption) and derives
retrieval times for a given link, so examples can explore non-uniform sizes
(the §6 future-work axis) without touching the client.
"""

from __future__ import annotations

import numpy as np

from repro.distsys.network import Link

__all__ = ["ItemServer"]


class ItemServer:
    def __init__(self, sizes: np.ndarray) -> None:
        sizes = np.asarray(sizes, dtype=np.float64)
        if sizes.ndim != 1 or sizes.shape[0] < 1:
            raise ValueError("sizes must be a non-empty 1-D array")
        if np.any(sizes <= 0) or not np.all(np.isfinite(sizes)):
            raise ValueError("sizes must be finite and positive")
        self.sizes = sizes

    @classmethod
    def uniform(cls, n_items: int, size: float = 1.0) -> "ItemServer":
        """Equal-size catalog — the paper's §5 assumption."""
        return cls(np.full(int(n_items), float(size)))

    @property
    def n_items(self) -> int:
        return int(self.sizes.shape[0])

    def size(self, item: int) -> float:
        return float(self.sizes[int(item)])

    def retrieval_times(self, link: Link) -> np.ndarray:
        return link.retrieval_times(self.sizes)
