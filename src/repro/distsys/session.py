"""Session driver: replay an access trace through a prefetching client.

One session = one user working through a sequence of (item, viewing-time)
pairs.  The driver owns the wall clock; the client owns cache, channel and
planning.  Predictors are updated *before* each viewing-period plan — i.e.
the model always knows the access history up to and including the item the
user is currently viewing, and nothing more.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.distsys.client import Client, ClientStats
from repro.prediction.base import AccessPredictor
from repro.workload.trace import Trace

__all__ = ["SessionResult", "run_session", "predictor_provider"]


@dataclass(frozen=True)
class SessionResult:
    stats: ClientStats
    access_times: np.ndarray
    duration: float

    @property
    def mean_access_time(self) -> float:
        return float(self.access_times.mean()) if self.access_times.size else float("nan")


def predictor_provider(predictor: AccessPredictor):
    """Adapt an online predictor to the client's provider interface.

    The returned callable ignores the current item argument (the predictor
    tracks its own context) — the session updates the predictor as requests
    are served.
    """
    return lambda _item: predictor.predict()


def run_session(
    client: Client,
    trace: Trace,
    *,
    predictor: AccessPredictor | None = None,
    initial_item: int | None = None,
    initial_viewing_time: float = 0.0,
) -> SessionResult:
    """Replay ``trace`` through ``client``; returns per-request access times.

    ``initial_item`` warm-starts the session (pre-served at time zero with
    its own viewing period ``initial_viewing_time``, exactly as the §5.3
    simulator seeds its first Markov state).  If a ``predictor`` is given it
    is fed every served item, including the initial one.
    """
    now = 0.0
    if initial_item is not None:
        if predictor is not None:
            predictor.update(int(initial_item))
        now = client.seed(int(initial_item), float(initial_viewing_time))

    for item, viewing_time in trace:
        access = client.request(item, now)
        if predictor is not None:
            predictor.update(item)
        t_serve = now + access
        client.view(item, viewing_time, now=t_serve)
        now = t_serve + viewing_time

    return SessionResult(
        stats=client.stats,
        access_times=np.asarray(client.stats.access_times, dtype=np.float64),
        duration=now,
    )
