"""A minimal discrete-event queue.

The distributed-information-system substrate is small enough that a heap of
``(time, sequence, callback)`` triples suffices.  The sequence number makes
ordering of simultaneous events deterministic (FIFO within a timestamp),
which the reproducibility tests rely on — and because it is unique, tuple
comparison never reaches the (incomparable) callback element.

Heap entries are plain tuples rather than ordered dataclass instances: a
tuple push/pop avoids one object allocation and a Python-level ``__lt__``
per comparison, which matters because every transfer grant, completion and
request in the fleet/topology simulators passes through this heap (see
``benchmarks/bench_fleet.py``).
"""

from __future__ import annotations

import heapq
from collections.abc import Callable

__all__ = ["EventQueue"]


class EventQueue:
    """Monotonic discrete-event scheduler."""

    __slots__ = ("_heap", "_seq", "now")

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        self.now = 0.0

    def schedule(self, time: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` at absolute ``time`` (not before now)."""
        time = float(time)
        if time < self.now - 1e-12:
            raise ValueError(f"cannot schedule at {time} before now={self.now}")
        heapq.heappush(self._heap, (time, self._seq, callback))
        self._seq += 1

    def schedule_in(self, delay: float, callback: Callable[[], None]) -> None:
        self.schedule(self.now + float(delay), callback)

    def __len__(self) -> int:
        return len(self._heap)

    def step(self) -> bool:
        """Run the earliest event; returns False when the queue is empty."""
        if not self._heap:
            return False
        time, _seq, callback = heapq.heappop(self._heap)
        self.now = time
        callback()
        return True

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Drain events (optionally bounded by time or count); returns count run."""
        heap = self._heap
        pop = heapq.heappop
        count = 0
        if until is None and max_events is None:
            # Unbounded drain: the fleet/topology hot path.  Inlining step()
            # here keeps the per-event cost to one heappop and one call.
            while heap:
                time, _seq, callback = pop(heap)
                self.now = time
                callback()
                count += 1
            return count
        while heap:
            if until is not None and heap[0][0] > until:
                break
            if max_events is not None and count >= max_events:
                break
            time, _seq, callback = pop(heap)
            self.now = time
            callback()
            count += 1
        if until is not None and self.now < until and (
            not heap or heap[0][0] > until
        ):
            self.now = until
        return count
