"""A minimal discrete-event queue.

The distributed-information-system substrate is small enough that a heap of
``(time, sequence, callback)`` triples suffices.  The sequence number makes
ordering of simultaneous events deterministic (FIFO within a timestamp),
which the reproducibility tests rely on.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable
from dataclasses import dataclass, field

__all__ = ["EventQueue"]


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)


class EventQueue:
    """Monotonic discrete-event scheduler."""

    def __init__(self) -> None:
        self._heap: list[_Event] = []
        self._seq = 0
        self.now = 0.0

    def schedule(self, time: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` at absolute ``time`` (not before now)."""
        if time < self.now - 1e-12:
            raise ValueError(f"cannot schedule at {time} before now={self.now}")
        heapq.heappush(self._heap, _Event(float(time), self._seq, callback))
        self._seq += 1

    def schedule_in(self, delay: float, callback: Callable[[], None]) -> None:
        self.schedule(self.now + float(delay), callback)

    def __len__(self) -> int:
        return len(self._heap)

    def step(self) -> bool:
        """Run the earliest event; returns False when the queue is empty."""
        if not self._heap:
            return False
        event = heapq.heappop(self._heap)
        self.now = event.time
        event.callback()
        return True

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Drain events (optionally bounded by time or count); returns count run."""
        count = 0
        while self._heap:
            if until is not None and self._heap[0].time > until:
                break
            if max_events is not None and count >= max_events:
                break
            self.step()
            count += 1
        if until is not None and self.now < until and (
            not self._heap or self._heap[0].time > until
        ):
            self.now = until
        return count
