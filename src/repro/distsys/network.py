"""Network link model: latency + bandwidth, one transfer at a time.

The paper abstracts the network into per-item retrieval times ``r_i``.  This
module grounds them: ``r_i = latency + size_i / bandwidth`` over a single
sequential channel (the client's downlink), which is also how the §2
assumption "the prefetch completes before the demand fetch" arises — a
transfer in progress is never preempted.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Link", "Channel"]


@dataclass(frozen=True)
class Link:
    """A network path with fixed latency (time units) and bandwidth
    (size units per time unit)."""

    latency: float = 0.0
    bandwidth: float = 1.0

    def __post_init__(self) -> None:
        if self.latency < 0 or not np.isfinite(self.latency):
            raise ValueError("latency must be finite and non-negative")
        if self.bandwidth <= 0 or not np.isfinite(self.bandwidth):
            raise ValueError("bandwidth must be finite and positive")

    def transfer_time(self, size: float) -> float:
        """Retrieval time of an object of ``size``."""
        if size < 0:
            raise ValueError("size must be non-negative")
        return self.latency + float(size) / self.bandwidth

    def retrieval_times(self, sizes: np.ndarray) -> np.ndarray:
        """Vectorised ``r_i`` for a catalog of sizes."""
        sizes = np.asarray(sizes, dtype=np.float64)
        return self.latency + sizes / self.bandwidth


class Channel:
    """Sequential transfer scheduler over a link (non-preemptive).

    Tracks when the channel drains (``busy_until``); each enqueued transfer
    starts at ``max(now, busy_until)`` and runs to completion.
    """

    def __init__(self, link: Link) -> None:
        self.link = link
        self.busy_until = 0.0
        self.total_busy_time = 0.0

    def enqueue(self, now: float, size: float) -> tuple[float, float]:
        """Schedule a transfer; returns ``(start, completion)`` times."""
        start = max(float(now), self.busy_until)
        duration = self.link.transfer_time(size)
        completion = start + duration
        self.busy_until = completion
        self.total_busy_time += duration
        return start, completion

    def idle_at(self, now: float) -> bool:
        return self.busy_until <= float(now)

    def backlog(self, now: float) -> float:
        """Remaining busy time as seen at ``now`` (the live stretch)."""
        return max(0.0, self.busy_until - float(now))
