"""Network link model: latency + bandwidth links, per-client channels, and
the fleet's shared server uplink.

The paper abstracts the network into per-item retrieval times ``r_i``.  This
module grounds them: ``r_i = latency + size_i / bandwidth`` over a single
sequential channel (the client's downlink), which is also how the §2
assumption "the prefetch completes before the demand fetch" arises — a
transfer in progress is never preempted.

:class:`Channel` is the one-client view (completion times computable at
enqueue).  :class:`ServerUplink` is the many-client generalisation: one
server egress with finite concurrency shared by every client, so prefetch
traffic from one client delays demand fetches of another — the cross-client
intrusion the single-link model cannot express.  Under contention a
transfer's completion depends on *future* arrivals, so the uplink delivers
completions through the event queue instead of returning them.
"""

from __future__ import annotations

import heapq
from collections import deque
from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

__all__ = ["Link", "Channel", "ServerUplink"]


@dataclass(frozen=True)
class Link:
    """A network path with fixed latency (time units) and bandwidth
    (size units per time unit)."""

    latency: float = 0.0
    bandwidth: float = 1.0

    def __post_init__(self) -> None:
        if self.latency < 0 or not np.isfinite(self.latency):
            raise ValueError("latency must be finite and non-negative")
        if self.bandwidth <= 0 or not np.isfinite(self.bandwidth):
            raise ValueError("bandwidth must be finite and positive")

    def transfer_time(self, size: float) -> float:
        """Retrieval time of an object of ``size``."""
        if size < 0:
            raise ValueError("size must be non-negative")
        return self.latency + float(size) / self.bandwidth

    def retrieval_times(self, sizes: np.ndarray) -> np.ndarray:
        """Vectorised ``r_i`` for a catalog of sizes."""
        sizes = np.asarray(sizes, dtype=np.float64)
        return self.latency + sizes / self.bandwidth


class Channel:
    """Sequential transfer scheduler over a link (non-preemptive).

    Tracks when the channel drains (``busy_until``); each enqueued transfer
    starts at ``max(now, busy_until)`` and runs to completion.
    """

    __slots__ = ("link", "busy_until", "total_busy_time")

    def __init__(self, link: Link) -> None:
        self.link = link
        self.busy_until = 0.0
        self.total_busy_time = 0.0

    def enqueue(self, now: float, size: float) -> tuple[float, float]:
        """Schedule a transfer; returns ``(start, completion)`` times."""
        return self.enqueue_duration(now, self.link.transfer_time(size))

    def enqueue_duration(self, now: float, duration: float) -> tuple[float, float]:
        """Schedule a transfer whose duration the caller already derived
        (e.g. from a precomputed per-item retrieval table)."""
        start = max(float(now), self.busy_until)
        completion = start + duration
        self.busy_until = completion
        self.total_busy_time += duration
        return start, completion

    def idle_at(self, now: float) -> bool:
        return self.busy_until <= float(now)

    def backlog(self, now: float) -> float:
        """Remaining busy time as seen at ``now`` (the live stretch)."""
        return max(0.0, self.busy_until - float(now))


# ---------------------------------------------------------------------------
# The fleet's shared server egress
# ---------------------------------------------------------------------------

class _Transfer:
    """One submitted transfer; ``completion`` is unknown until granted.

    A slotted plain class, not a dataclass: the fleet allocates one of these
    per transfer, and ``__slots__`` halves the allocation cost next to a
    ``__dict__``-bearing instance.
    """

    __slots__ = (
        "client_id",
        "item",
        "duration",
        "kind",
        "seq",
        "submitted",
        "on_complete",
        "on_grant",
        "completion",
    )

    def __init__(
        self,
        client_id,  # any hashable flow key (client int, proxy stream tuple…)
        item: int,
        duration: float,  # client-link transfer time (server penalty added at grant)
        kind: str,  # "prefetch" | "demand"
        seq: int,
        submitted: float,
        on_complete: Callable[[float], None],
        on_grant: Callable[[int, float], None] | None = None,
    ) -> None:
        self.client_id = client_id
        self.item = item
        self.duration = duration
        self.kind = kind
        self.seq = seq
        self.submitted = submitted
        self.on_complete = on_complete
        self.on_grant = on_grant
        self.completion: float | None = None


class ServerUplink:
    """Shared server egress: at most ``concurrency`` transfers in flight.

    Each client's transfers are served in submission order, one at a time —
    exactly the sequential, non-preemptive :class:`Channel` semantics of the
    single-client model — and the head transfer of every idle client competes
    for free uplink slots.  With ``concurrency=None`` (unbounded) every
    client proceeds as if it had a private link, which is how a 1-client
    fleet degenerates to the original :class:`~repro.distsys.client.Client`.

    Scheduling disciplines when a slot frees:

    * ``"fifo"``  — grant the transfer submitted earliest (global order);
    * ``"fair"``  — round-robin over clients: the least-recently-granted
      client with a ready transfer goes first.

    ``client_id`` is any hashable flow key: plain client ints in a flat
    fleet, and proxy upstream-stream keys (``(proxy_name, stream)``) when
    the uplink is an inter-tier link in a cache hierarchy
    (:mod:`repro.distsys.topology`).  Each flow serializes its transfers in
    submission order, whatever the key type.

    A granted transfer occupies a slot for its client-link transfer time
    plus whatever the server adds (:meth:`ItemServer.serve` — the shared
    server-cache miss penalty).  Completion times are delivered through the
    event queue; ties are resolved by submission sequence, so the timeline
    is deterministic.
    """

    _DISCIPLINES = ("fifo", "fair")

    __slots__ = (
        "queue",
        "server",
        "concurrency",
        "discipline",
        "_queues",
        "_in_flight",
        "_seq",
        "_grant_counter",
        "_last_grant",
        "_ready_heap",
        "granted",
        "total_service_time",
        "service_time_by_kind",
        "peak_in_flight",
        "last_completion",
    )

    def __init__(self, queue, server, *, concurrency: int | None = None,
                 discipline: str = "fifo") -> None:
        if discipline not in self._DISCIPLINES:
            raise ValueError(
                f"discipline must be one of {self._DISCIPLINES}, got {discipline!r}"
            )
        if concurrency is not None and int(concurrency) < 1:
            raise ValueError("concurrency must be positive (or None for unbounded)")
        self.queue = queue
        self.server = server
        self.concurrency = None if concurrency is None else int(concurrency)
        self.discipline = discipline
        self._queues: dict[object, deque[_Transfer]] = {}
        self._in_flight: dict[object, _Transfer] = {}  # flow -> granted transfer
        self._seq = 0
        self._grant_counter = 0
        self._last_grant: dict[object, int] = {}
        # FIFO ready-heap: one (head seq, flow) entry per ready flow; see
        # _pick.  The "fair" discipline re-keys on every grant and keeps the
        # linear scan instead.
        self._ready_heap: list[tuple[int, object]] = []
        # -- stats ---------------------------------------------------------
        self.granted = 0
        self.total_service_time = 0.0
        self.service_time_by_kind = {"prefetch": 0.0, "demand": 0.0}
        self.peak_in_flight = 0
        self.last_completion = 0.0

    # ------------------------------------------------------------------
    def submit(
        self,
        client_id,
        item: int,
        duration: float,
        now: float,
        on_complete: Callable[[float], None],
        *,
        kind: str = "demand",
        on_grant: Callable[[int, float], None] | None = None,
    ) -> None:
        """Queue a transfer of ``duration`` (client-link time) for ``client_id``.

        ``on_grant(item, completion)`` fires when a slot is granted (possibly
        synchronously); ``on_complete(completion)`` fires from the event
        queue when the transfer lands.
        """
        if duration <= 0:
            raise ValueError("transfer duration must be positive")
        if kind not in self.service_time_by_kind:
            raise ValueError(f"unknown transfer kind {kind!r}")
        transfer = _Transfer(
            client_id=client_id,
            item=int(item),
            duration=float(duration),
            kind=kind,
            seq=self._seq,
            submitted=float(now),
            on_complete=on_complete,
            on_grant=on_grant,
        )
        self._seq += 1
        cid = transfer.client_id
        queue = self._queues.get(cid)
        if queue is None:
            queue = self._queues[cid] = deque()
        queue.append(transfer)
        if (
            self.discipline == "fifo"
            and len(queue) == 1
            and cid not in self._in_flight
        ):
            # The flow just became ready with this transfer at its head.
            heapq.heappush(self._ready_heap, (transfer.seq, cid))
        self._try_grant(float(now))

    # ------------------------------------------------------------------
    def _pick(self):
        """The next flow to grant, or ``None`` when nothing is ready.

        FIFO keeps a ready-heap invariant — every flow that is non-empty and
        not in flight has exactly one ``(head seq, flow)`` entry — so the
        earliest-submitted head pops in O(log flows) instead of a linear
        scan per grant (entries are pushed on submit-to-idle-flow and on
        completion-with-backlog, and consumed here exactly when granted).
        Seqs are unique, so the pop order equals the old ``min`` over ready
        flows and the flow key itself is never compared.

        The "fair" discipline ranks by last-grant recency, which re-keys
        every flow on every grant — a heap would have to be rebuilt, so it
        keeps the one-pass scan (keys unique via the seq tie-breaker).
        """
        if self.discipline == "fifo":
            heap = self._ready_heap
            if not heap:
                return None
            return heapq.heappop(heap)[1]
        # fair: least-recently-granted client first; brand-new clients (no
        # grant yet) rank by submission order via the -1 sentinel + seq tie.
        in_flight = self._in_flight
        last_grant = self._last_grant
        best = None
        best_key = None
        for cid, q in self._queues.items():
            if q and cid not in in_flight:
                key = (last_grant.get(cid, -1), q[0].seq)
                if best_key is None or key < best_key:
                    best_key = key
                    best = cid
        return best

    def _try_grant(self, now: float) -> None:
        while True:
            if self.concurrency is not None and len(self._in_flight) >= self.concurrency:
                return
            cid = self._pick()
            if cid is None:
                return
            transfer = self._queues[cid].popleft()
            self._in_flight[cid] = transfer
            self._last_grant[cid] = self._grant_counter
            self._grant_counter += 1
            service = transfer.duration + self.server.serve(transfer.item)
            completion = now + service
            transfer.completion = completion
            self.granted += 1
            self.total_service_time += service
            self.service_time_by_kind[transfer.kind] += service
            self.peak_in_flight = max(self.peak_in_flight, len(self._in_flight))
            self.last_completion = max(self.last_completion, completion)
            self.queue.schedule(completion, lambda t=transfer: self._complete(t))
            if transfer.on_grant is not None:
                transfer.on_grant(transfer.item, completion)

    def _complete(self, transfer: _Transfer) -> None:
        cid = transfer.client_id
        del self._in_flight[cid]
        queue = self._queues.get(cid)
        if not queue:
            self._queues.pop(cid, None)
        elif self.discipline == "fifo":
            # The flow is free again with a waiting head: back into the heap.
            heapq.heappush(self._ready_heap, (queue[0].seq, cid))
        self._try_grant(self.queue.now)
        transfer.on_complete(transfer.completion)

    # ------------------------------------------------------------------
    def backlog(self, client_id, now: float) -> float:
        """This client's queued work as seen at ``now``, ignoring contention.

        Folds the in-flight completion and queued durations left to right —
        the exact arithmetic of :meth:`Channel.backlog` — so with an
        unbounded uplink the value is bit-identical to the single-client
        channel's live stretch.  Under contention it is an optimistic lower
        bound (grants may be delayed by other clients).
        """
        t = float(now)
        in_flight = self._in_flight.get(client_id)
        if in_flight is not None:
            t = in_flight.completion
        for transfer in self._queues.get(client_id, ()):
            t = t + transfer.duration
        return max(0.0, t - float(now))

    def idle(self) -> bool:
        return not self._in_flight and not any(self._queues.values())
