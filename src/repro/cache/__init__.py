"""Cache substrate: the §5 replacement policies and classic baselines.

* :mod:`repro.cache.base` — capacity/stats machinery shared by policies;
* :mod:`repro.cache.policies` — LRU, LFU, FIFO, Random baselines;
* :mod:`repro.cache.pr` — the paper's Pr (``P_i r_i``) cache with LFU/DS
  sub-arbitration;
* :mod:`repro.cache.watchman` — delay-saving profit cache (WATCHMAN).
"""

from repro.cache.base import Cache, CacheStats
from repro.cache.policies import FIFOCache, LFUCache, LRUCache, RandomCache
from repro.cache.pr import PrCache
from repro.cache.watchman import WatchmanCache

__all__ = [
    "Cache",
    "CacheStats",
    "FIFOCache",
    "LFUCache",
    "LRUCache",
    "RandomCache",
    "PrCache",
    "WatchmanCache",
]
