"""Cache interface and statistics.

The paper assumes equal item sizes (§5), so capacity is a *count*.  Every
policy implements victim selection; insertion and lookup bookkeeping live
here.  ``touch`` is called on every access (hit or miss) so recency/
frequency policies can maintain their state.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CacheStats", "Cache"]


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else float("nan")


class Cache:
    """Fixed-capacity, equal-size item cache."""

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity = int(capacity)
        self._items: set[int] = set()
        self.stats = CacheStats()

    # -- interface to override -------------------------------------------
    def select_victim(self) -> int:
        """Choose the item to evict (cache guaranteed non-empty)."""
        raise NotImplementedError

    def on_insert(self, item: int) -> None:
        """Policy bookkeeping hook after an insertion."""

    def on_access(self, item: int, hit: bool) -> None:
        """Policy bookkeeping hook on every access."""

    def on_evict(self, item: int) -> None:
        """Policy bookkeeping hook after an eviction."""

    # -- common machinery --------------------------------------------------
    def __contains__(self, item: int) -> bool:
        return int(item) in self._items

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> frozenset[int]:
        return frozenset(self._items)

    def access(self, item: int) -> bool:
        """Record an access; returns True on a hit."""
        item = int(item)
        hit = item in self._items
        if hit:
            self.stats.hits += 1
        else:
            self.stats.misses += 1
        self.on_access(item, hit)
        return hit

    def insert(self, item: int) -> int | None:
        """Insert ``item``, evicting if needed; returns the victim if any."""
        item = int(item)
        if self.capacity == 0:
            return None
        if item in self._items:
            return None
        victim: int | None = None
        if len(self._items) >= self.capacity:
            victim = int(self.select_victim())
            self.evict(victim)
        self._items.add(item)
        self.on_insert(item)
        return victim

    def evict(self, item: int) -> None:
        item = int(item)
        if item not in self._items:
            raise KeyError(f"item {item} not cached")
        self._items.discard(item)
        self.stats.evictions += 1
        self.on_evict(item)
