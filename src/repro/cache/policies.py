"""Classic replacement policies: LRU, LFU, FIFO, Random.

These are the ablation baselines the arbitration caches are compared
against (benchmark A4) and the building blocks of the distsys examples.
"""

from __future__ import annotations

from collections import OrderedDict, deque

import numpy as np

from repro.cache.base import Cache
from repro.util.rng import as_generator

__all__ = ["LRUCache", "LFUCache", "FIFOCache", "RandomCache"]


class LRUCache(Cache):
    """Least recently used."""

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._order: OrderedDict[int, None] = OrderedDict()

    def on_access(self, item: int, hit: bool) -> None:
        if hit:
            self._order.move_to_end(item)

    def on_insert(self, item: int) -> None:
        self._order[item] = None
        self._order.move_to_end(item)

    def on_evict(self, item: int) -> None:
        self._order.pop(item, None)

    def select_victim(self) -> int:
        return next(iter(self._order))


class LFUCache(Cache):
    """Least frequently used; ties broken by least recent use."""

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._freq: dict[int, int] = {}
        self._clock = 0
        self._last_used: dict[int, int] = {}

    def on_access(self, item: int, hit: bool) -> None:
        self._clock += 1
        if hit:
            self._freq[item] = self._freq.get(item, 0) + 1
            self._last_used[item] = self._clock

    def on_insert(self, item: int) -> None:
        self._clock += 1
        self._freq[item] = self._freq.get(item, 0) + 1
        self._last_used[item] = self._clock

    def on_evict(self, item: int) -> None:
        self._freq.pop(item, None)
        self._last_used.pop(item, None)

    def select_victim(self) -> int:
        return min(self._items, key=lambda i: (self._freq.get(i, 0), self._last_used.get(i, 0), i))


class FIFOCache(Cache):
    """First in, first out (insertion order, unaffected by hits)."""

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._queue: deque[int] = deque()

    def on_insert(self, item: int) -> None:
        self._queue.append(item)

    def on_evict(self, item: int) -> None:
        try:
            self._queue.remove(item)
        except ValueError:
            pass

    def select_victim(self) -> int:
        return self._queue[0]


class RandomCache(Cache):
    """Uniform random eviction (seeded for reproducibility)."""

    def __init__(self, capacity: int, seed: int | np.random.Generator | None = None) -> None:
        super().__init__(capacity)
        self._rng = as_generator(seed)

    def select_victim(self) -> int:
        members = sorted(self._items)
        return members[int(self._rng.integers(len(members)))]
