"""WATCHMAN-style delay-saving cache (Scheuermann, Shim & Vingralek).

§5.2 borrows its sub-arbitration from WATCHMAN's *delay-saving profit*:
``freq_i * r_i`` — how much aggregate network time the cached copy saves.
Here the profit is the *primary* key (the standalone cache the paper's
citation describes, in its simplified equal-size form), used as an ablation
baseline against Pr-arbitration.
"""

from __future__ import annotations

import numpy as np

from repro.cache.base import Cache

__all__ = ["WatchmanCache"]


class WatchmanCache(Cache):
    def __init__(self, capacity: int, retrieval_times: np.ndarray) -> None:
        super().__init__(capacity)
        self.retrieval_times = np.asarray(retrieval_times, dtype=np.float64)
        self.frequencies = np.zeros(self.retrieval_times.shape[0], dtype=np.float64)

    def on_access(self, item: int, hit: bool) -> None:
        self.frequencies[item] += 1.0

    def profit(self, item: int) -> float:
        """Delay-saving profit ``freq_i * r_i``."""
        return float(self.frequencies[item] * self.retrieval_times[item])

    def select_victim(self) -> int:
        return min(self._items, key=lambda i: (self.profit(i), i))
