"""The paper's Pr-cache: eviction by lowest ``P_i * r_i`` (§5.2).

Victim choice needs the *current* next-access estimates, so the cache holds
a reference to a provider callable returning the probability vector; the
retrieval times are fixed.  Sub-arbitration (LFU or delay-saving) breaks the
frequent ties among zero-probability items, with the item id as the final
deterministic tie-break.

This class packages :func:`repro.core.arbitration.select_victim` behind the
:class:`repro.cache.base.Cache` interface so Pr replacement can be compared
head-to-head with LRU/LFU/FIFO in the ablation benchmarks and used by the
event-driven client.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.cache.base import Cache
from repro.core.arbitration import select_victim

__all__ = ["PrCache"]


class PrCache(Cache):
    def __init__(
        self,
        capacity: int,
        retrieval_times: np.ndarray,
        probability_provider: Callable[[], np.ndarray],
        *,
        sub_arbitration: str | None = None,
    ) -> None:
        super().__init__(capacity)
        if sub_arbitration not in (None, "lfu", "ds"):
            raise ValueError(f"unknown sub_arbitration {sub_arbitration!r}")
        self.retrieval_times = np.asarray(retrieval_times, dtype=np.float64)
        self.probability_provider = probability_provider
        self.sub_arbitration = sub_arbitration
        self.frequencies = np.zeros(self.retrieval_times.shape[0], dtype=np.float64)

    def on_access(self, item: int, hit: bool) -> None:
        self.frequencies[item] += 1.0

    def _sub_key(self):
        if self.sub_arbitration is None:
            return None
        if self.sub_arbitration == "lfu":
            return lambda i: float(self.frequencies[i])
        return lambda i: float(self.frequencies[i] * self.retrieval_times[i])

    def select_victim(self) -> int:
        p = self.probability_provider()
        return select_victim(
            sorted(self._items),
            primary_key=lambda i: float(p[i] * self.retrieval_times[i]),
            sub_key=self._sub_key(),
        )
