"""Command-line interface: ``python -m repro <command>``.

Small, dependency-free front door for the library:

* ``solve``     — solve one SKP instance given on the command line;
* ``simulate``  — run the §4.4 prefetch-only experiment and print a summary;
* ``figure7``   — run one Figure 7 point (policy × cache size);
* ``version``   — print the package version.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["main"]


def _cmd_solve(args: argparse.Namespace) -> int:
    from repro import PrefetchProblem, solve_kp, solve_skp, solve_skp_exact, upper_bound

    p = np.asarray([float(x) for x in args.probabilities.split(",")])
    r = np.asarray([float(x) for x in args.retrievals.split(",")])
    problem = PrefetchProblem(p, r, args.viewing_time)
    kp = solve_kp(problem)
    skp = solve_skp(problem, variant=args.variant)
    exact = solve_skp_exact(problem)
    print(f"instance: n={problem.n} v={problem.viewing_time:g} sum(P)={p.sum():.4f}")
    print(f"KP   plan {kp.plan.items} g={kp.value:.4f}")
    print(f"SKP  plan {skp.plan.items} g={skp.gain:.4f} (nodes {skp.nodes})")
    print(f"exact plan {exact.plan.items} g={exact.gain:.4f}")
    print(f"upper bound (eq.7) {upper_bound(problem):.4f}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.simulation import (
        KPPrefetch,
        NoPrefetch,
        PerfectPrefetch,
        PrefetchOnlyConfig,
        SKPPrefetch,
        run_prefetch_only,
    )

    config = PrefetchOnlyConfig(
        n=args.items, iterations=args.iterations, method=args.method, seed=args.seed
    )
    result = run_prefetch_only(
        config, [NoPrefetch(), KPPrefetch(), SKPPrefetch(), PerfectPrefetch()]
    )
    print(f"prefetch-only: n={args.items} method={args.method} iters={args.iterations}")
    for series in result.series:
        print(f"  {series.name:18s} mean T = {series.mean():7.3f}")
    return 0


def _cmd_figure7(args: argparse.Namespace) -> int:
    from repro.simulation import FIGURE7_POLICIES, PrefetchCacheConfig, run_prefetch_cache
    from repro.workload import generate_markov_source

    if args.policy not in FIGURE7_POLICIES:
        print(f"unknown policy {args.policy!r}; choose from {list(FIGURE7_POLICIES)}", file=sys.stderr)
        return 2
    source = generate_markov_source(100, seed=args.source_seed)
    cfg = PrefetchCacheConfig(
        cache_size=args.cache_size,
        n_requests=args.requests,
        seed=args.seed,
        **FIGURE7_POLICIES[args.policy],
    )
    res = run_prefetch_cache(source, cfg)
    print(
        f"{args.policy} cache={args.cache_size}: mean T {res.mean_access_time:.4f}, "
        f"hit rate {res.hit_rate:.3f}, prefetch precision {res.prefetch_precision:.3f}"
    )
    return 0


def _cmd_version(_args: argparse.Namespace) -> int:
    import repro

    print(repro.__version__)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    solve = sub.add_parser("solve", help="solve one SKP instance")
    solve.add_argument("--probabilities", required=True, help="comma-separated P_i")
    solve.add_argument("--retrievals", required=True, help="comma-separated r_i")
    solve.add_argument("--viewing-time", type=float, required=True)
    solve.add_argument("--variant", choices=["corrected", "faithful"], default="corrected")
    solve.set_defaults(func=_cmd_solve)

    simulate = sub.add_parser("simulate", help="run the §4.4 prefetch-only experiment")
    simulate.add_argument("--items", type=int, default=10)
    simulate.add_argument("--iterations", type=int, default=2000)
    simulate.add_argument("--method", choices=["skewy", "flat"], default="skewy")
    simulate.add_argument("--seed", type=int, default=0)
    simulate.set_defaults(func=_cmd_simulate)

    fig7 = sub.add_parser("figure7", help="run one Figure 7 point")
    fig7.add_argument("--policy", default="SKP+Pr+DS")
    fig7.add_argument("--cache-size", type=int, default=20)
    fig7.add_argument("--requests", type=int, default=2000)
    fig7.add_argument("--seed", type=int, default=0)
    fig7.add_argument("--source-seed", type=int, default=42)
    fig7.set_defaults(func=_cmd_figure7)

    version = sub.add_parser("version", help="print the package version")
    version.set_defaults(func=_cmd_version)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
