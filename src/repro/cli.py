"""Command-line interface: ``python -m repro <command>``.

Small, dependency-free front door for the library:

* ``solve``      — solve one SKP instance given on the command line;
* ``simulate``   — run the §4.4 prefetch-only experiment and print a summary;
* ``figure7``    — run one Figure 7 point (policy × cache size);
* ``fleet``      — run one fleet point: N clients sharing a contended
  server uplink on a population workload, optionally non-stationary
  (``--drift``) and planned from a learned model (``--model-source``);
* ``topology``   — run one cache-hierarchy point: the fleet routed through
  star/tree/two-tier proxy tiers with per-tier speculation, plus the Che
  analytical reference for the edge hit ratio (same drift/model knobs);
* ``gateway``    — the live speculation sidecar: ``serve`` runs the asyncio
  HTTP service (``POST /v1/access`` → prefetch advice), ``bench`` replays a
  population workload (``zipf-mix``/``markov-pop``/``trace:<path>``) against
  an in-process gateway and reports decision latency, sustained RPS, and the
  closed-loop hit-rate comparison;
* ``experiment`` — the spec-driven experiments API: ``run`` a preset or spec
  file across worker processes (including the ``fleet-*`` and ``edge-*``
  presets), ``list`` the preset/component catalogs, ``describe`` one preset;
* ``optimize``   — cost-aware placement search (``repro.optimize``): ``run``
  one greedy/coordinate/exhaustive driver on an ``opt-*`` preset and print
  the candidate trail, ``list`` the optimize presets, ``describe`` one
  problem's decision variables, bounds and cost budget;
* ``tournament`` — the standing predictor bake-off: ``run`` a tournament
  preset (every predictor × dynamics scenario × oracle/online on CRN-shared
  streams) and print the ranked scoreboard with oracle→baseline gap
  closure, ``list`` the tournament presets;
* ``version``    — print the package version.

Installed as the ``repro`` console script (``pip install -e .`` →
``repro gateway serve``), or runnable without installation as
``python -m repro``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

__all__ = ["main"]


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {value}")
    return value


def _nonnegative_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be a non-negative integer, got {value}")
    return value


def _nonnegative_float(text: str) -> float:
    value = float(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be non-negative, got {value}")
    return value


def _unit_interval(text: str) -> float:
    value = float(text)
    if not 0.0 <= value <= 1.0:
        raise argparse.ArgumentTypeError(f"must be in [0, 1], got {value}")
    return value


def _float_list(parser: argparse.ArgumentParser, option: str, text: str) -> np.ndarray:
    try:
        return np.asarray([float(x) for x in text.split(",") if x.strip() != ""])
    except ValueError:
        parser.error(f"{option} must be a comma-separated list of numbers, got {text!r}")


def _cmd_solve(args: argparse.Namespace) -> int:
    from repro import PrefetchProblem, solve_kp, solve_skp, solve_skp_exact, upper_bound

    p = _float_list(args.parser, "--probabilities", args.probabilities)
    r = _float_list(args.parser, "--retrievals", args.retrievals)
    if p.shape != r.shape:
        args.parser.error(
            f"--probabilities has {p.shape[0]} values but --retrievals has "
            f"{r.shape[0]}; the lists must be the same length"
        )
    try:
        problem = PrefetchProblem(p, r, args.viewing_time)
    except ValueError as exc:
        args.parser.error(str(exc))
    kp = solve_kp(problem)
    skp = solve_skp(problem, variant=args.variant)
    exact = solve_skp_exact(problem)
    print(f"instance: n={problem.n} v={problem.viewing_time:g} sum(P)={p.sum():.4f}")
    print(f"KP   plan {kp.plan.items} g={kp.value:.4f}")
    print(f"SKP  plan {skp.plan.items} g={skp.gain:.4f} (nodes {skp.nodes})")
    print(f"exact plan {exact.plan.items} g={exact.gain:.4f}")
    print(f"upper bound (eq.7) {upper_bound(problem):.4f}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.simulation import (
        KPPrefetch,
        NoPrefetch,
        PerfectPrefetch,
        PrefetchOnlyConfig,
        SKPPrefetch,
        run_prefetch_only,
    )

    config = PrefetchOnlyConfig(
        n=args.items, iterations=args.iterations, method=args.method, seed=args.seed
    )
    result = run_prefetch_only(
        config, [NoPrefetch(), KPPrefetch(), SKPPrefetch(), PerfectPrefetch()]
    )
    print(f"prefetch-only: n={args.items} method={args.method} iters={args.iterations}")
    for series in result.series:
        print(f"  {series.name:18s} mean T = {series.mean():7.3f}")
    return 0


def _cmd_figure7(args: argparse.Namespace) -> int:
    from repro.simulation import FIGURE7_POLICIES, PrefetchCacheConfig, run_prefetch_cache
    from repro.workload import generate_markov_source

    if args.policy not in FIGURE7_POLICIES:
        print(f"unknown policy {args.policy!r}; choose from {list(FIGURE7_POLICIES)}", file=sys.stderr)
        return 2
    source = generate_markov_source(100, seed=args.source_seed)
    cfg = PrefetchCacheConfig(
        cache_size=args.cache_size,
        n_requests=args.requests,
        seed=args.seed,
        **FIGURE7_POLICIES[args.policy],
    )
    res = run_prefetch_cache(source, cfg)
    print(
        f"{args.policy} cache={args.cache_size}: mean T {res.mean_access_time:.4f}, "
        f"hit rate {res.hit_rate:.3f}, prefetch precision {res.prefetch_precision:.3f}"
    )
    return 0


def _population_from_args(args: argparse.Namespace, client_ids=None):
    """Validate the shared fleet/topology population options and build one.

    Both subcommands expose the same workload surface (--source, --clients,
    --requests, --catalog, --overlap, --stagger, --seed) plus --policy and
    --server-cache; keeping the checks and construction here stops the two
    front doors from drifting apart.
    """
    from repro.experiments import CACHE_POLICIES, PIPELINES, PREDICTORS, WORKLOADS
    from repro.workload.dynamics import MARKOV_DYNAMICS_KINDS, DynamicsConfig

    if args.policy not in PIPELINES:
        args.parser.error(
            f"unknown pipeline {args.policy!r}; available: {', '.join(PIPELINES.names())}"
        )
    if args.server_cache not in CACHE_POLICIES:
        args.parser.error(
            f"unknown cache policy {args.server_cache!r}; "
            f"available: {', '.join(CACHE_POLICIES.names())}"
        )
    if args.source not in ("zipf-mix", "markov-pop"):
        args.parser.error("--source must be zipf-mix or markov-pop")
    if args.online_predictor not in PREDICTORS:
        args.parser.error(
            f"unknown predictor {args.online_predictor!r}; "
            f"available: {', '.join(PREDICTORS.names())}"
        )
    if args.source == "markov-pop" and args.drift not in MARKOV_DYNAMICS_KINDS:
        args.parser.error(
            f"markov-pop supports --drift {'/'.join(MARKOV_DYNAMICS_KINDS)}"
        )
    dynamics = DynamicsConfig(kind=args.drift, n_regimes=args.drift_regimes)
    common = dict(
        stagger=args.stagger, seed=args.seed, dynamics=dynamics,
        client_ids=client_ids,
    )
    if args.source == "zipf-mix":
        dyn = WORKLOADS.create(
            "zipf-mix:dynamic", args.clients, args.catalog, args.requests,
            overlap=args.overlap,
            v_quantum=getattr(args, "v_quantum", 0.0),
            **common,
        )
    else:
        dyn = WORKLOADS.create(
            "markov-pop:dynamic", args.clients, args.catalog, args.requests, **common
        )
    return dyn.population


def _run_maybe_profiled(args: argparse.Namespace, fn, *fn_args, **fn_kwargs):
    """Run the simulation, optionally under cProfile (``--profile``).

    With ``--profile`` the sorted stats table goes to stderr after the run,
    so the normal result report on stdout stays clean and parseable.
    """
    if not getattr(args, "profile", False):
        return fn(*fn_args, **fn_kwargs)
    from repro.util.perf import profile_call

    result, stats = profile_call(
        fn, *fn_args, sort=args.profile_sort, limit=args.profile_limit, **fn_kwargs
    )
    print(stats, file=sys.stderr)
    return result


def _cmd_fleet(args: argparse.Namespace) -> int:
    from repro.distsys.fleet import FleetConfig, run_fleet
    from repro.experiments import PIPELINES, build_server_cache

    # The config is built before the population (the hybrid engine builds
    # its population lazily), so the pipeline check cannot ride on
    # _population_from_args here.
    if args.policy not in PIPELINES:
        args.parser.error(
            f"unknown pipeline {args.policy!r}; available: {', '.join(PIPELINES.names())}"
        )
    pipeline = dict(PIPELINES.get(args.policy))
    config = FleetConfig(
        cache_capacity=args.cache_capacity,
        strategy=str(pipeline["strategy"]),
        sub_arbitration=pipeline["sub_arbitration"],
        concurrency=None if args.concurrency <= 0 else args.concurrency,
        discipline=args.discipline,
        miss_penalty=args.miss_penalty,
        model_source=args.model_source,
        online_predictor=args.online_predictor,
        engine=args.engine,
        hybrid_sample=args.hybrid_sample,
    )
    server_cache = None
    if args.engine == "hybrid":
        # Only the K sampled clients are ever materialised — a 10^6-client
        # invocation costs the sample, not the population.
        from repro.distsys.megafleet import run_hybrid_fleet

        res = _run_maybe_profiled(
            args,
            run_hybrid_fleet,
            lambda ids: _population_from_args(args, client_ids=ids),
            args.clients,
            config,
            server_cache_size=args.server_cache_size,
        )
    else:
        population = _population_from_args(args)
        server_cache = build_server_cache(
            args.server_cache, args.server_cache_size, population.sizes, seed=args.seed
        )
        res = _run_maybe_profiled(
            args, run_fleet, population, config, server_cache=server_cache
        )
    agg = res.aggregate
    print(
        f"fleet: {args.clients} clients x {args.requests} requests "
        f"({args.source}, catalog {args.catalog}, "
        f"uplink {args.concurrency if args.concurrency > 0 else 'unbounded'} "
        f"slots, {args.discipline}, engine {args.engine})"
    )
    print(
        f"  mean T {agg.mean_access_time:.4f}  p50 {agg.p50_access_time:.4f}  "
        f"p95 {agg.p95_access_time:.4f}  p99 {agg.p99_access_time:.4f}"
    )
    print(
        f"  hit rate {agg.hit_rate:.3f}  prefetch precision "
        f"{agg.prefetch_precision:.3f}  fairness {agg.fairness:.3f}"
    )
    busy = (
        f"utilization {res.server_utilization:.3f}"
        if args.concurrency > 0
        else f"offered load {res.offered_load:.3f}"
    )
    print(
        f"  server: {busy}  prefetch load "
        f"{res.prefetch_load_frac:.3f}  transfers {res.transfers_granted}  "
        f"makespan {res.makespan:.1f}  events {res.events}"
    )
    if server_cache is not None:
        print(f"  server cache hit rate {res.server_cache_hit_rate:.3f}")
    if args.engine == "cohort":
        print(
            f"  cohort: {res.n_cohorts} cohorts  plan solves {res.plan_solves}  "
            f"memo hits {res.plan_memo_hits}"
            + ("  [saturated]" if res.saturated else "")
        )
    elif args.engine == "hybrid":
        print(
            f"  hybrid: {res.sample_size} simulated of {res.n_modeled} modeled  "
            f"delta wait {res.delta_wait:.4f}  "
            f"iterations {res.fixed_point_iterations}"
            + ("" if res.converged else "  [not converged]")
            + ("  [saturated]" if res.saturated else "")
        )
    return 0


def _cmd_topology(args: argparse.Namespace) -> int:
    from repro.analysis.cacheperf import che_edge_reference
    from repro.distsys.topology import CacheNetwork, TopologyConfig, topology_names
    from repro.experiments import CACHE_POLICIES, PIPELINES, build_server_cache

    if args.topology not in topology_names():
        args.parser.error(
            f"unknown topology {args.topology!r}; available: {', '.join(topology_names())}"
        )
    if args.edge_cache not in CACHE_POLICIES:
        args.parser.error(
            f"unknown cache policy {args.edge_cache!r}; "
            f"available: {', '.join(CACHE_POLICIES.names())}"
        )
    population = _population_from_args(args)
    pipeline = dict(PIPELINES.get(args.policy))
    config = TopologyConfig(
        topology=args.topology,
        n_edges=args.edges,
        cache_capacity=args.cache_capacity,
        strategy=str(pipeline["strategy"]),
        sub_arbitration=pipeline["sub_arbitration"],
        placement=args.placement,
        edge_cache=args.edge_cache,
        edge_cache_size=args.edge_cache_size,
        edge_prefetch_budget=args.edge_prefetch_budget,
        mid_cache_size=args.mid_cache_size,
        concurrency=None if args.concurrency <= 0 else args.concurrency,
        discipline=args.discipline,
        miss_penalty=args.miss_penalty,
        model_source=args.model_source,
        online_predictor=args.online_predictor,
    )
    server_cache = build_server_cache(
        args.server_cache, args.server_cache_size, population.sizes, seed=args.seed
    )
    network = CacheNetwork(
        population, config, server_cache=server_cache, seed=args.seed
    )
    res = _run_maybe_profiled(args, network.run)
    agg = res.aggregate
    # Report the hierarchy actually built, not the flags: star ignores
    # --edges, and edge-side speculation is inert without a cache to fill
    # (star / --edge-cache-size 0) or with a zero prefetch budget.
    n_edges = res.tiers[0].n_proxies
    client_side = args.placement in ("client", "both")
    edge_side = (
        args.placement in ("edge", "both")
        and res.tiers[0].caching
        and args.edge_prefetch_budget > 0
    )
    placement = {
        (False, False): "none",
        (True, False): "client",
        (False, True): "edge",
        (True, True): "both",
    }[(client_side, edge_side)]
    print(
        f"topology: {args.topology}, {args.clients} clients x {args.requests} "
        f"requests ({args.source}, catalog {args.catalog}, "
        f"{n_edges} edge prox{'y' if n_edges == 1 else 'ies'}, "
        f"placement {placement})"
    )
    print(
        f"  mean T {agg.mean_access_time:.4f}  p50 {agg.p50_access_time:.4f}  "
        f"p95 {agg.p95_access_time:.4f}  p99 {agg.p99_access_time:.4f}"
    )
    print(
        f"  client hit rate {agg.hit_rate:.3f}  prefetch precision "
        f"{agg.prefetch_precision:.3f}  fairness {agg.fairness:.3f}"
    )
    for tier in res.tiers:
        if tier.requests == 0:
            plural = "proxy" if tier.n_proxies == 1 else "proxies"
            print(f"  {tier.tier}: pass-through ({tier.n_proxies} {plural})")
            continue
        print(
            f"  {tier.tier}: {tier.requests} requests  hit rate {tier.hit_rate:.3f}  "
            f"upstream fetches {tier.upstream_demand_fetches}  "
            f"prefetches {tier.prefetches_issued} issued / "
            f"{tier.prefetches_used} used"
        )
    busy = (
        f"utilization {res.origin_utilization:.3f}"
        if args.concurrency > 0
        else f"offered load {res.offered_load:.3f}"
    )
    print(
        f"  origin: {busy}  prefetch load {res.prefetch_load_frac:.3f}  "
        f"transfers {res.transfers_granted}  makespan {res.makespan:.1f}  "
        f"events {res.events}"
    )
    if server_cache is not None:
        print(f"  origin cache hit rate {res.server_cache_hit_rate:.3f}")
    che = che_edge_reference(population, res)
    if che > 0.0:
        print(f"  che edge reference (IRM, unfiltered demand): {che:.3f}")
    return 0


# ---------------------------------------------------------------------------
# gateway subcommands
# ---------------------------------------------------------------------------

def _gateway_config_from_args(args: argparse.Namespace, sizes=None):
    """Build a GatewayConfig from the shared serve/bench options.

    ``sizes`` pins the catalog to a workload's item sizes (the bench path —
    the closed-loop reference plans over the same retrieval times only if
    the gateway does too); ``serve`` uses the uniform §5 catalog.
    """
    from repro.experiments import CACHE_POLICIES, PIPELINES, PREDICTORS
    from repro.gateway import GatewayConfig, SessionConfig, TierSpec

    if args.policy not in PIPELINES:
        args.parser.error(
            f"unknown pipeline {args.policy!r}; available: {', '.join(PIPELINES.names())}"
        )
    if args.predictor not in PREDICTORS:
        args.parser.error(
            f"unknown predictor {args.predictor!r}; "
            f"available: {', '.join(PREDICTORS.names())}"
        )
    if args.edge_cache not in CACHE_POLICIES:
        args.parser.error(
            f"unknown cache policy {args.edge_cache!r}; "
            f"available: {', '.join(CACHE_POLICIES.names())}"
        )
    pipeline = dict(PIPELINES.get(args.policy))
    session = SessionConfig(
        cache_capacity=args.cache_capacity,
        strategy=str(pipeline["strategy"]),
        sub_arbitration=pipeline["sub_arbitration"],
        predictor=args.predictor,
        ttl=args.ttl,
        max_sessions=args.max_sessions,
    )
    tiers = []
    if args.edge_cache_size > 0:
        tiers.append(TierSpec("edge", args.edge_cache, args.edge_cache_size))
    if args.mid_cache_size > 0:
        tiers.append(TierSpec("mid", args.edge_cache, args.mid_cache_size))
    common = dict(
        session=session,
        tiers=tuple(tiers),
        latency=args.latency,
        bandwidth=args.bandwidth,
        seed=args.seed,
    )
    if sizes is not None:
        return GatewayConfig(sizes=sizes, **common)
    return GatewayConfig.uniform(args.catalog, **common)


def _cmd_gateway_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.gateway import serve

    config = _gateway_config_from_args(args)
    try:
        asyncio.run(serve(config, host=args.host, port=args.port))
    except KeyboardInterrupt:
        print("gateway stopped")
    return 0


def _gateway_population_from_args(args: argparse.Namespace):
    """Build the bench population; supports ``trace:<path>`` sources.

    A trace source with ``--catalog 0`` infers the catalog from the log and
    writes it back into ``args.catalog`` so the gateway config matches.
    """
    from repro.experiments import WORKLOADS

    source = args.source
    if source.startswith("trace:"):
        path = Path(source[len("trace:"):])
        if not path.is_file():
            args.parser.error(f"trace file not found: {path}")
        try:
            population = WORKLOADS.create(
                "trace", args.clients, args.catalog, args.requests,
                path=str(path), stagger=0.0, seed=args.seed,
            )
        except ValueError as exc:  # malformed log, 1-entry trace, small catalog
            args.parser.error(str(exc))
        args.catalog = population.n_items
        return population
    if source not in ("zipf-mix", "markov-pop"):
        args.parser.error("--source must be zipf-mix, markov-pop, or trace:<path>")
    if args.catalog < 2:
        args.parser.error("--catalog must be at least 2 for synthetic sources")
    common = dict(stagger=0.0, seed=args.seed)
    if source == "zipf-mix":
        return WORKLOADS.create(
            "zipf-mix", args.clients, args.catalog, args.requests,
            overlap=args.overlap, **common,
        )
    return WORKLOADS.create(
        "markov-pop", args.clients, args.catalog, args.requests, **common
    )


def _cmd_gateway_bench(args: argparse.Namespace) -> int:
    from repro.gateway import closed_loop_reference, run_gateway_bench

    population = _gateway_population_from_args(args)
    config = _gateway_config_from_args(args, sizes=population.sizes)
    result, snapshot = run_gateway_bench(
        population,
        config,
        time_scale=args.time_scale,
        max_concurrency=args.max_concurrency,
    )
    print(
        f"gateway bench: {result.sessions} sessions x {args.requests} requests "
        f"({args.source}, catalog {config.n_items}, "
        f"concurrency {args.max_concurrency})"
    )
    print(
        f"  {result.reports} decisions in {result.elapsed_s:.2f}s = "
        f"{result.decisions_per_s:,.0f} decisions/s"
    )
    print(
        f"  latency p50 {result.latency_p50_s * 1e3:.2f}ms  "
        f"p90 {result.latency_p90_s * 1e3:.2f}ms  "
        f"p99 {result.latency_p99_s * 1e3:.2f}ms  "
        f"max {result.latency_max_s * 1e3:.2f}ms"
    )
    print(
        f"  open-loop: hit rate {result.hit_rate:.3f} "
        f"({result.hits} hit / {result.waits} wait / {result.misses} miss), "
        f"mean T {result.mean_access_time:.4f}, "
        f"{result.prefetches_advised} prefetches advised"
    )
    for tier in snapshot.get("tiers", ()):
        print(
            f"  mirror tier {tier['tier']}: hit rate {tier['hit_rate']:.3f} "
            f"({tier['items']}/{tier['capacity']} items)"
        )
    if result.errors:
        print(f"  ERRORS: {result.errors}", file=sys.stderr)
        return 1
    if not args.no_closed_loop:
        reference = closed_loop_reference(population, config)
        closed = reference.aggregate.hit_rate
        gap = abs(result.hit_rate - closed)
        print(
            f"  closed-loop reference: hit rate {closed:.3f}  "
            f"gap {gap * 100:.2f}pp"
        )
    return 0


# ---------------------------------------------------------------------------
# experiment subcommands
# ---------------------------------------------------------------------------

def _cmd_experiment_list(_args: argparse.Namespace) -> int:
    from repro.experiments import all_registries, preset, preset_names

    print("experiment presets:")
    for name in preset_names():
        print(f"  {preset(name).summary()}")
    print()
    print("component registries:")
    for family, registry in all_registries().items():
        print(f"  {family:14s} {', '.join(registry.names())}")
    return 0


def _cmd_experiment_describe(args: argparse.Namespace) -> int:
    from repro.experiments import PRESETS, preset

    if args.name not in PRESETS:
        args.parser.error(
            f"unknown preset {args.name!r}; available: {', '.join(PRESETS.names())}"
        )
    spec = preset(args.name)
    print(spec.summary())
    if spec.description:
        print(spec.description)
    print()
    print(spec.to_json(indent=2))
    return 0


def _cmd_experiment_run(args: argparse.Namespace) -> int:
    from repro.experiments import (
        PRESETS,
        ExperimentSpec,
        RegistryError,
        default_workers,
        preset,
        run,
    )

    if args.spec_file is not None:
        path = Path(args.spec_file)
        if not path.is_file():
            args.parser.error(f"spec file not found: {path}")
        try:
            spec = ExperimentSpec.from_json(path.read_text())
        except (ValueError, RegistryError) as exc:  # bad JSON, SpecError, unknown name
            args.parser.error(f"invalid spec file {path}: {exc}")
    else:
        if args.name is None:
            args.parser.error("give a preset name or --spec-file")
        if args.name not in PRESETS:
            args.parser.error(
                f"unknown preset {args.name!r}; available: {', '.join(PRESETS.names())}"
            )
        spec = preset(args.name)
    spec = spec.with_overrides(iterations=args.iterations, seed=args.seed)

    workers = default_workers() if args.workers is None else args.workers  # for display
    total = len(spec.cells())
    print(f"{spec.summary()} [workers={workers}]", file=sys.stderr)

    def progress(done: int, _total: int, cell) -> None:
        if args.quiet:
            return
        params = " ".join(f"{k}={v}" for k, v in cell.params.items())
        metrics = " ".join(f"{k}={v:.4g}" for k, v in cell.metrics.items())
        print(f"  [{done}/{total}] {params}: {metrics}", file=sys.stderr)

    result = run(spec, workers=workers, progress=progress)
    csv_path, json_path = result.write(args.output_dir)
    print(result.format_table())
    print(f"\nwrote {csv_path} and {json_path}")
    return 0


# ---------------------------------------------------------------------------
# optimize subcommands
# ---------------------------------------------------------------------------

def _optimize_preset(args: argparse.Namespace):
    """Resolve an ``optimize``-kind preset or fail with the valid names."""
    from repro.experiments import PRESETS, preset

    if args.name not in PRESETS:
        args.parser.error(
            f"unknown preset {args.name!r}; available: {', '.join(PRESETS.names())}"
        )
    spec = preset(args.name)
    if spec.kind != "optimize":
        names = [n for n in PRESETS.names() if preset(n).kind == "optimize"]
        args.parser.error(
            f"preset {args.name!r} is kind {spec.kind!r}, not an optimize "
            f"preset; choose from: {', '.join(names)}"
        )
    return spec


def _cmd_optimize_run(args: argparse.Namespace) -> int:
    from repro.optimize import OptimizeError, optimize, problem_from_spec
    from repro.util import EvalCache, available_workers

    spec = _optimize_preset(args).with_overrides(
        iterations=args.iterations, seed=args.seed
    )
    problem = problem_from_spec(spec)
    workers = available_workers() if args.workers is None else args.workers
    cache = EvalCache(args.cache_dir) if args.cache else None
    print(
        f"{spec.summary()} [driver={args.driver} workers={workers} "
        f"cache={'off' if cache is None else cache.directory}]",
        file=sys.stderr,
    )
    try:
        result = optimize(problem, driver=args.driver, workers=workers, cache=cache)
    except OptimizeError as exc:
        args.parser.error(str(exc))
    print(result.format_table())
    if args.output:
        path = Path(args.output)
        path.write_text(result.to_json(indent=2))
        print(f"\nwrote {path}")
    return 0


def _cmd_optimize_list(_args: argparse.Namespace) -> int:
    from repro.experiments import preset, preset_names
    from repro.optimize import problem_from_spec

    print("optimize presets:")
    for name in preset_names():
        spec = preset(name)
        if spec.kind != "optimize":
            continue
        problem = problem_from_spec(spec)
        print(f"  {spec.summary()}")
        print(
            f"    {problem.system_kind} system, {len(problem.variables)} "
            f"variables, budget {problem.budget:g}, "
            f"{problem.n_candidates} raw candidates"
        )
    return 0


def _cmd_optimize_describe(args: argparse.Namespace) -> int:
    from repro.optimize import problem_from_spec

    spec = _optimize_preset(args)
    problem = problem_from_spec(spec)
    print(spec.summary())
    if spec.description:
        print(spec.description)
    print()
    print(
        f"system: {problem.system_kind}, policy {problem.policy}, "
        f"{problem.n_clients} clients × {problem.iterations} requests, "
        f"confirm engine {problem.confirm_engine} (top {problem.confirm_top})"
    )
    print(
        f"{'variable':24s}  {'values':>20s}  {'unit':>6s}  "
        f"{'replicas':>12s}  {'max cost':>9s}"
    )
    for var in problem.variables:
        replicas = problem.replica_count(var)
        label = (
            f"{var.replicas} ×{replicas}"
            if isinstance(var.replicas, str)
            else f"×{replicas}"
        )
        max_cost = max(problem.variable_cost(var.name, v) for v in var.values)
        values = " ".join(str(v) for v in var.values)
        print(
            f"{var.name:24s}  {values:>20s}  {var.unit_cost:6.1f}  "
            f"{label:>12s}  {max_cost:9.1f}"
        )
    baseline = problem.uniform_baseline()
    print(
        f"budget {problem.budget:g}  (cheapest corner costs "
        f"{problem.cost(problem.cheapest_assignment()):g})"
    )
    print(
        "uniform baseline: "
        + " ".join(f"{k}={v}" for k, v in baseline.items())
        + f"  (cost {problem.cost(baseline):g})"
    )
    return 0


# ---------------------------------------------------------------------------
# tournament subcommands
# ---------------------------------------------------------------------------

def _tournament_preset(args: argparse.Namespace):
    """Resolve a ``tournament``-kind preset or fail with the valid names."""
    from repro.experiments import PRESETS, preset

    if args.name not in PRESETS:
        args.parser.error(
            f"unknown preset {args.name!r}; available: {', '.join(PRESETS.names())}"
        )
    spec = preset(args.name)
    if spec.kind != "tournament":
        names = [n for n in PRESETS.names() if preset(n).kind == "tournament"]
        args.parser.error(
            f"preset {args.name!r} is kind {spec.kind!r}, not a tournament "
            f"preset; choose from: {', '.join(names)}"
        )
    return spec


def _cmd_tournament_run(args: argparse.Namespace) -> int:
    from repro.experiments import default_workers, run
    from repro.experiments.tournament import format_scoreboard, scoreboard

    spec = _tournament_preset(args).with_overrides(
        iterations=args.iterations, seed=args.seed
    )
    workers = default_workers() if args.workers is None else args.workers
    total = len(spec.cells())
    print(f"{spec.summary()} [workers={workers}]", file=sys.stderr)

    def progress(done: int, _total: int, cell) -> None:
        if args.quiet:
            return
        params = " ".join(f"{k}={v}" for k, v in cell.params.items())
        print(f"  [{done}/{total}] {params}", file=sys.stderr)

    result = run(spec, workers=workers, progress=progress)
    print(format_scoreboard(scoreboard(result)))
    if args.output_dir:
        csv_path, json_path = result.write(args.output_dir)
        print(f"\nwrote {csv_path} and {json_path}")
    return 0


def _cmd_tournament_list(_args: argparse.Namespace) -> int:
    from repro.experiments import preset, preset_names

    print("tournament presets:")
    for name in preset_names():
        spec = preset(name)
        if spec.kind != "tournament":
            continue
        print(f"  {spec.summary()}")
        if spec.description:
            print(f"    {spec.description}")
    return 0


def _cmd_version(_args: argparse.Namespace) -> int:
    import repro

    print(repro.__version__)
    return 0


def _add_workload_model_options(parser: argparse.ArgumentParser) -> None:
    """Shared fleet/topology knobs: workload dynamics and the planning model."""
    parser.add_argument("--drift", default="none",
                        choices=["none", "regime", "zipf-drift", "flash", "diurnal"],
                        help="non-stationary workload schedule (default: stationary)")
    parser.add_argument("--drift-regimes", type=_positive_int, default=3,
                        help="popularity regimes for --drift regime")
    parser.add_argument("--model-source", default="oracle",
                        choices=["oracle", "online"],
                        help="plan from the t=0 oracle row or a learned online model")
    parser.add_argument("--online-predictor", default="frequency:ewma",
                        help="predictor name for --model-source online")


def _add_profile_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--profile", action="store_true",
                        help="run under cProfile and dump sorted stats to stderr")
    parser.add_argument("--profile-sort", default="cumulative",
                        choices=["cumulative", "tottime", "calls"],
                        help="pstats sort order for --profile")
    parser.add_argument("--profile-limit", type=_positive_int, default=30,
                        help="rows of profile output to print")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    solve = sub.add_parser("solve", help="solve one SKP instance")
    solve.add_argument("--probabilities", required=True, help="comma-separated P_i")
    solve.add_argument("--retrievals", required=True, help="comma-separated r_i")
    solve.add_argument("--viewing-time", type=float, required=True)
    solve.add_argument("--variant", choices=["corrected", "faithful"], default="corrected")
    solve.set_defaults(func=_cmd_solve, parser=solve)

    simulate = sub.add_parser("simulate", help="run the §4.4 prefetch-only experiment")
    simulate.add_argument("--items", type=_positive_int, default=10)
    simulate.add_argument("--iterations", type=_positive_int, default=2000)
    simulate.add_argument("--method", choices=["skewy", "flat"], default="skewy")
    simulate.add_argument("--seed", type=int, default=0)
    simulate.set_defaults(func=_cmd_simulate, parser=simulate)

    fig7 = sub.add_parser("figure7", help="run one Figure 7 point")
    fig7.add_argument("--policy", default="SKP+Pr+DS")
    fig7.add_argument("--cache-size", type=int, default=20)
    fig7.add_argument("--requests", type=_positive_int, default=2000)
    fig7.add_argument("--seed", type=int, default=0)
    fig7.add_argument("--source-seed", type=int, default=42)
    fig7.set_defaults(func=_cmd_figure7, parser=fig7)

    fleet = sub.add_parser("fleet", help="run one fleet point (N clients, shared uplink)")
    fleet.add_argument("--clients", type=_positive_int, default=10)
    fleet.add_argument("--requests", type=_positive_int, default=500,
                       help="requests per client")
    fleet.add_argument("--catalog", type=_positive_int, default=100,
                       help="catalog size (items)")
    fleet.add_argument("--source", default="zipf-mix",
                       choices=["zipf-mix", "markov-pop"])
    fleet.add_argument("--policy", default="skp+pr",
                       help="planner pipeline name (see `experiment list`)")
    fleet.add_argument("--overlap", type=_unit_interval, default=0.5,
                       help="shared-hot-set fraction for zipf-mix")
    fleet.add_argument("--concurrency", type=_nonnegative_int, default=4,
                       help="uplink slots (0 = unbounded)")
    fleet.add_argument("--discipline", default="fifo", choices=["fifo", "fair"])
    fleet.add_argument("--cache-capacity", type=_nonnegative_int, default=8)
    fleet.add_argument("--server-cache", default="lru",
                       help="shared server-side cache policy name")
    fleet.add_argument("--server-cache-size", type=_nonnegative_int, default=0,
                       help="shared server-side cache size (0 = off)")
    fleet.add_argument("--miss-penalty", type=_nonnegative_float, default=0.0,
                       help="backing-store service penalty")
    fleet.add_argument("--engine", default="event",
                       choices=["event", "cohort", "hybrid"],
                       help="simulation engine: exact event loop, vectorized "
                            "cohort kernel, or sampled simulation + analytic "
                            "closure (see docs/scale.md)")
    fleet.add_argument("--hybrid-sample", type=_positive_int, default=64,
                       help="clients actually simulated by --engine hybrid")
    fleet.add_argument("--v-quantum", type=_nonnegative_float, default=0.0,
                       help="round viewing times to this grid (zipf-mix only; "
                            "coarser grids raise the cohort engine's plan-memo "
                            "hit rate)")
    fleet.add_argument("--stagger", type=_nonnegative_float, default=50.0,
                       help="client start times uniform in [0, stagger]")
    fleet.add_argument("--seed", type=int, default=0)
    _add_workload_model_options(fleet)
    _add_profile_options(fleet)
    fleet.set_defaults(func=_cmd_fleet, parser=fleet)

    topology = sub.add_parser(
        "topology", help="run one cache-hierarchy point (clients → proxies → origin)"
    )
    topology.add_argument("--topology", default="tree",
                          help="hierarchy shape: star | tree | two-tier")
    topology.add_argument("--clients", type=_positive_int, default=8)
    topology.add_argument("--edges", type=_positive_int, default=2,
                          help="edge proxies (tree/two-tier)")
    topology.add_argument("--requests", type=_positive_int, default=500,
                          help="requests per client")
    topology.add_argument("--catalog", type=_positive_int, default=100,
                          help="catalog size (items)")
    topology.add_argument("--source", default="zipf-mix",
                          choices=["zipf-mix", "markov-pop"])
    topology.add_argument("--policy", default="skp+pr",
                          help="client planner pipeline name (see `experiment list`)")
    topology.add_argument("--placement", default="both",
                          choices=["none", "client", "edge", "both"],
                          help="where speculation runs")
    topology.add_argument("--overlap", type=_unit_interval, default=0.5,
                          help="shared-hot-set fraction for zipf-mix")
    topology.add_argument("--cache-capacity", type=_nonnegative_int, default=8,
                          help="per-client cache slots")
    topology.add_argument("--edge-cache", default="lru",
                          help="edge-proxy cache policy name")
    topology.add_argument("--edge-cache-size", type=_nonnegative_int, default=25,
                          help="edge-proxy cache size (0 = pass-through)")
    topology.add_argument("--edge-prefetch-budget", type=_nonnegative_int, default=4,
                          help="max speculative fetches in flight per edge proxy")
    topology.add_argument("--mid-cache-size", type=_nonnegative_int, default=0,
                          help="mid-tier cache size (two-tier topology)")
    topology.add_argument("--concurrency", type=_nonnegative_int, default=4,
                          help="origin uplink slots (0 = unbounded)")
    topology.add_argument("--discipline", default="fifo", choices=["fifo", "fair"])
    topology.add_argument("--server-cache", default="lru",
                          help="origin-side cache policy name")
    topology.add_argument("--server-cache-size", type=_nonnegative_int, default=0,
                          help="origin-side cache size (0 = off)")
    topology.add_argument("--miss-penalty", type=_nonnegative_float, default=0.0,
                          help="origin backing-store service penalty")
    topology.add_argument("--stagger", type=_nonnegative_float, default=50.0,
                          help="client start times uniform in [0, stagger]")
    topology.add_argument("--seed", type=int, default=0)
    _add_workload_model_options(topology)
    _add_profile_options(topology)
    topology.set_defaults(func=_cmd_topology, parser=topology)

    gateway = sub.add_parser(
        "gateway", help="run or benchmark the live speculation gateway"
    )
    gsub = gateway.add_subparsers(dest="gateway_command", required=True)

    def _add_gateway_options(parser: argparse.ArgumentParser) -> None:
        parser.add_argument("--catalog", type=_nonnegative_int, default=100,
                            help="catalog size (items); 0 with a trace source "
                                 "infers it from the log")
        parser.add_argument("--policy", default="skp+pr",
                            help="planner pipeline name (see `experiment list`)")
        parser.add_argument("--predictor", default="frequency:ewma",
                            help="per-session online predictor name")
        parser.add_argument("--cache-capacity", type=_nonnegative_int, default=8,
                            help="per-session client cache slots")
        parser.add_argument("--ttl", type=float, default=300.0,
                            help="idle-session TTL (wall-clock seconds)")
        parser.add_argument("--max-sessions", type=_positive_int, default=10_000,
                            help="LRU cap on live sessions")
        parser.add_argument("--edge-cache", default="lru",
                            help="mirrored tier cache policy name")
        parser.add_argument("--edge-cache-size", type=_nonnegative_int, default=64,
                            help="mirrored edge tier size (0 = no edge tier)")
        parser.add_argument("--mid-cache-size", type=_nonnegative_int, default=0,
                            help="mirrored mid tier size (0 = no mid tier)")
        parser.add_argument("--latency", type=_nonnegative_float, default=0.0,
                            help="link latency for retrieval times")
        parser.add_argument("--bandwidth", type=float, default=1.0,
                            help="link bandwidth for retrieval times")
        parser.add_argument("--seed", type=int, default=0)

    gserve = gsub.add_parser("serve", help="run the gateway HTTP service")
    gserve.add_argument("--host", default="127.0.0.1")
    gserve.add_argument("--port", type=_nonnegative_int, default=8273,
                        help="listen port (0 = ephemeral)")
    _add_gateway_options(gserve)
    gserve.set_defaults(func=_cmd_gateway_serve, parser=gserve)

    gbench = gsub.add_parser(
        "bench", help="replay a workload against an in-process gateway"
    )
    gbench.add_argument("--source", default="zipf-mix",
                        help="zipf-mix | markov-pop | trace:<path>")
    gbench.add_argument("--clients", type=_positive_int, default=32,
                        help="concurrent HTTP sessions")
    gbench.add_argument("--requests", type=_positive_int, default=200,
                        help="requests per session")
    gbench.add_argument("--overlap", type=_unit_interval, default=0.5,
                        help="shared-hot-set fraction for zipf-mix")
    gbench.add_argument("--time-scale", type=_nonnegative_float, default=0.0,
                        help="wall seconds slept per virtual viewing second "
                             "(0 = saturation)")
    gbench.add_argument("--max-concurrency", type=_positive_int, default=64,
                        help="sessions in flight at once")
    gbench.add_argument("--no-closed-loop", action="store_true",
                        help="skip the closed-loop run_fleet comparison")
    _add_gateway_options(gbench)
    gbench.set_defaults(func=_cmd_gateway_bench, parser=gbench)

    experiment = sub.add_parser(
        "experiment", help="run/list/describe spec-driven experiments"
    )
    esub = experiment.add_subparsers(dest="experiment_command", required=True)

    erun = esub.add_parser("run", help="execute a preset or a spec JSON file")
    erun.add_argument("name", nargs="?", help="preset name (see `experiment list`)")
    erun.add_argument("--spec-file", help="path to an ExperimentSpec JSON file")
    erun.add_argument(
        "--workers",
        type=_positive_int,
        default=None,
        help="worker processes (default: all cores; 1 = sequential)",
    )
    erun.add_argument("--output-dir", default="results", help="artifact directory")
    erun.add_argument("--iterations", type=_positive_int, default=None)
    erun.add_argument("--seed", type=int, default=None)
    erun.add_argument("--quiet", action="store_true", help="no per-cell progress")
    erun.set_defaults(func=_cmd_experiment_run, parser=erun)

    elist = esub.add_parser("list", help="list presets and registered components")
    elist.set_defaults(func=_cmd_experiment_list, parser=elist)

    edescribe = esub.add_parser("describe", help="show one preset's full spec")
    edescribe.add_argument("name")
    edescribe.set_defaults(func=_cmd_experiment_describe, parser=edescribe)

    optimize = sub.add_parser(
        "optimize", help="cost-aware placement search over the cache hierarchy"
    )
    osub = optimize.add_subparsers(dest="optimize_command", required=True)

    orun = osub.add_parser("run", help="run one search driver on an optimize preset")
    orun.add_argument("name", help="optimize preset name (see `optimize list`)")
    orun.add_argument("--driver", default="greedy",
                      choices=["greedy", "coordinate", "exhaustive"],
                      help="search driver (default: greedy marginal-gain)")
    orun.add_argument("--iterations", type=_positive_int, default=None,
                      help="requests per client in every candidate evaluation")
    orun.add_argument("--seed", type=int, default=None)
    orun.add_argument("--workers", type=_positive_int, default=None,
                      help="worker processes for candidate frontiers "
                      "(default: all cores; 1 = sequential; never affects "
                      "the trail)")
    orun.add_argument("--cache", action=argparse.BooleanOptionalAction,
                      default=True,
                      help="persistent evaluation cache: repeated runs "
                      "reuse engine scores (--no-cache to disable)")
    orun.add_argument("--cache-dir", default="results/evalcache",
                      help="evaluation cache directory "
                      "(default: results/evalcache)")
    orun.add_argument("--output",
                      help="write the full OptimizationResult trail JSON here")
    orun.set_defaults(func=_cmd_optimize_run, parser=orun)

    olist = osub.add_parser("list", help="list the optimize presets")
    olist.set_defaults(func=_cmd_optimize_list, parser=olist)

    odescribe = osub.add_parser(
        "describe",
        help="show a preset's decision variables, bounds and cost budget",
    )
    odescribe.add_argument("name", help="optimize preset name")
    odescribe.set_defaults(func=_cmd_optimize_describe, parser=odescribe)

    tournament = sub.add_parser(
        "tournament", help="standing predictor bake-off on drifting streams"
    )
    tsub = tournament.add_subparsers(dest="tournament_command", required=True)

    trun = tsub.add_parser(
        "run", help="run a tournament preset and print the ranked scoreboard"
    )
    trun.add_argument(
        "name",
        nargs="?",
        default="tournament",
        help="tournament preset name (default: tournament; see `tournament list`)",
    )
    trun.add_argument("--iterations", type=_positive_int, default=None,
                      help="requests per client in every cell")
    trun.add_argument("--seed", type=int, default=None)
    trun.add_argument("--workers", type=_positive_int, default=None,
                      help="worker processes (default: all cores; 1 = "
                      "sequential; the scoreboard is identical either way)")
    trun.add_argument("--output-dir", default=None,
                      help="also write the raw cell table CSV/JSON here")
    trun.add_argument("--quiet", action="store_true", help="no per-cell progress")
    trun.set_defaults(func=_cmd_tournament_run, parser=trun)

    tlist = tsub.add_parser("list", help="list the tournament presets")
    tlist.set_defaults(func=_cmd_tournament_list, parser=tlist)

    version = sub.add_parser("version", help="print the package version")
    version.set_defaults(func=_cmd_version, parser=version)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
