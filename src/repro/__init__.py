"""repro — reproduction of Tuah, Kumar & Venkatesh (IPPS/SPDP 1999),
*A Performance Model of Speculative Prefetching in Distributed Information
Systems*.

The package implements the paper's performance model for speculative
prefetching (access improvement as a function of viewing time, retrieval
times and next-access probabilities), the stretch knapsack problem (SKP)
solver that maximises it, the cache-integration arbitration of §5, and the
full Monte-Carlo evaluation of Figures 4, 5 and 7 — plus the substrates
those need (workload generators, a Markov request source, cache policies,
access predictors, and a discrete-event distributed-information-system
simulator that scales from one client on a private link to a fleet of
clients contending for one server uplink — see ``docs/distsys.md``).

Quick start — solve one instance::

    import numpy as np
    from repro import PrefetchProblem, solve_skp

    problem = PrefetchProblem(
        probabilities=np.array([0.5, 0.3, 0.2]),
        retrieval_times=np.array([8.0, 12.0, 3.0]),
        viewing_time=10.0,
    )
    result = solve_skp(problem)
    print(result.plan.items, result.gain)

Quick start — run experiments through the declarative API
(:mod:`repro.experiments`; see ``docs/experiments.md`` for the spec schema,
preset catalog and parallelism knobs)::

    from repro.experiments import preset, run

    result = run(preset("figure5-small"), workers=4)
    print(result.format_table())
    result.write("results")  # figure5-small.csv / figure5-small.json

or, from the shell::

    python -m repro experiment list
    python -m repro experiment run figure5-small --workers 4

See ``examples/quickstart.py`` for a guided tour of the model objects and
``examples/experiment_sweep.py`` for spec-driven scenario sweeps.
"""

from repro.core import (
    ArbitrationResult,
    ExhaustiveResult,
    KPResult,
    LinearRelaxation,
    PlanOutcome,
    Prefetcher,
    PrefetchPlan,
    PrefetchProblem,
    SKPResult,
    access_improvement,
    access_improvement_with_cache,
    arbitrate_demand,
    arbitrate_prefetch,
    canonical_order,
    expected_access_time_no_prefetch,
    expected_access_time_with_plan,
    linear_relaxation,
    plan_stretch,
    reorder_plan,
    solve_kp,
    solve_skp,
    solve_skp_exact,
    solve_skp_exhaustive,
    stretch_time,
    upper_bound,
)

__version__ = "1.10.0"  # keep in sync with pyproject.toml

__all__ = [
    "__version__",
    "ArbitrationResult",
    "ExhaustiveResult",
    "KPResult",
    "LinearRelaxation",
    "PlanOutcome",
    "Prefetcher",
    "PrefetchPlan",
    "PrefetchProblem",
    "SKPResult",
    "access_improvement",
    "access_improvement_with_cache",
    "arbitrate_demand",
    "arbitrate_prefetch",
    "canonical_order",
    "expected_access_time_no_prefetch",
    "expected_access_time_with_plan",
    "linear_relaxation",
    "plan_stretch",
    "reorder_plan",
    "solve_kp",
    "solve_skp",
    "solve_skp_exact",
    "solve_skp_exhaustive",
    "stretch_time",
    "upper_bound",
]
