"""Packaging shim (this offline environment ships setuptools without the
`wheel` package, so metadata lives here rather than pyproject.toml).

Keep ``version`` in sync with ``repro.__version__``.
"""

from setuptools import find_packages, setup

setup(
    name="repro-speculative-prefetching",
    version="1.1.0",
    description=(
        "Reproduction of Tuah, Kumar & Venkatesh (IPPS/SPDP 1999): a "
        "performance model of speculative prefetching in distributed "
        "information systems, with a spec-driven experiment engine"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.22"],
    extras_require={
        "test": ["pytest", "hypothesis", "pytest-benchmark"],
    },
)
