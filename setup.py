"""Legacy shim: lets `pip install -e .` use setup.py develop on toolchains
without the `wheel` package (this offline environment ships setuptools 65
only).  All metadata lives in pyproject.toml."""

from setuptools import setup

setup()
